//! Discrete-event execution of a query graph.
//!
//! Each stream process runs as an RP (§2.3): source RPs (gen_array,
//! receiver, grep) pace element production on their node's CPU; stream
//! channels (from `scsq-transport`) marshal elements into buffers and
//! move them over the simulated MPI/TCP carriers one buffer per event;
//! receiving RPs de-marshal, run their SQEP stages (charging compute
//! time for expensive functions), and forward results to their
//! subscribers. End-of-stream control messages propagate downstream;
//! when the client manager's pipeline sees EOS on all inputs, the query
//! is complete (§2.2: RPs terminate when the stream is finite and
//! exhausted).

use crate::builder::QueryGraph;
use crate::coordinator::Coordinator;
use crate::error::EngineError;
use crate::funcs;
use crate::fused::{CostModel, ExecChain, FusedProgram};
use crate::measure::{ChannelReport, QueryResult, QueryStats};
use crate::ops::{InputKind, Pipeline};
use scsq_cluster::{ClusterName, Environment, NodeId};
use scsq_net::FlowId;
use scsq_ql::{ColRow, ColumnarBatch, SelectionVector, SpHandle, Value};
use scsq_sim::{typed::Event, SimTime, StateProbe, TypedSimulator};
use scsq_transport::{Carrier, ChannelConfig, StreamChannel};
use std::collections::HashMap;

/// Execution knobs for one query run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// MPI stream buffer size in bytes (the Fig 6 / Fig 8 sweep
    /// variable). §3.1 finds 1000 bytes optimal for point-to-point.
    pub mpi_buffer: u64,
    /// Whether the MPI drivers double-buffer (§2.3).
    pub mpi_double: bool,
    /// Arrays emitted by `receiver()` sources.
    pub receiver_arrays: u64,
    /// Samples per `receiver()` array (power of two for FFT pipelines).
    pub receiver_samples: usize,
    /// Simulator event budget (guards against runaway queries).
    pub event_limit: u64,
    /// How unconstrained stream processes are placed (§2.2's naïve
    /// algorithm, or the topology-aware refinement).
    pub placement: crate::placement::PlacementPolicy,
    /// Carry inter-cluster streams over UDP instead of TCP (§2.1: the
    /// I/O nodes "provide TCP or UDP"). UDP has no flow control:
    /// overloaded I/O nodes drop datagrams and the affected elements are
    /// lost.
    pub udp_inter_cluster: bool,
    /// Detect periodic phases of the event schedule and fast-forward
    /// them analytically (bit-identical results, far fewer dispatched
    /// events). Disable to force per-event execution, e.g. when
    /// measuring the uncoalesced baseline.
    pub coalesce: bool,
    /// Execute stage chains as fused jump-table programs instead of the
    /// recursive interpreter. Identical outputs either way; disable to
    /// measure the interpreted baseline (`--fuse off`).
    pub fuse: bool,
    /// Absorb whole delivered batches with one dispatch per typed
    /// column when the destination's fused chain qualifies (aggregate
    /// sinks over cost-free stages). Identical outputs either way —
    /// the per-element interpreter is the byte-identity reference
    /// (`--columnar off`). Requires `fuse`; ignored when fusion is off.
    pub columnar: bool,
    /// Relative amplitude of multiplicative service-time jitter applied
    /// to every CPU-side service (element generation, marshal, compute,
    /// de-marshal; 0.0 disables it). Non-zero jitter makes every buffer
    /// period unique, so train coalescing provably cannot fire — the
    /// knob behind the per-event benchmark pass.
    pub service_jitter: f64,
    /// Track per-channel ingress→delivery latency histograms even when
    /// no `latency(p)` observer asks for them, so every
    /// [`ChannelReport`] carries its latency distribution. Channels
    /// watched by a `latency(p)` RP are tracked regardless of this
    /// flag. Off by default: an untracked channel pays nothing.
    pub observe_latency: bool,
    /// Collect the explain-analyze profile: per-stage call and element
    /// tallies in every executor tier, plus per-RP wall time scoped
    /// around chain execution. Off by default — with profiling off the
    /// tally slices are empty and the per-element cost is one bounds
    /// check. Profiling never changes query results or simulated time.
    pub profile: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mpi_buffer: scsq_transport::MPI_DEFAULT_BUFFER,
            mpi_double: true,
            receiver_arrays: 8,
            receiver_samples: 1024,
            event_limit: 400_000_000,
            placement: crate::placement::PlacementPolicy::Naive,
            udp_inter_cluster: false,
            coalesce: true,
            fuse: true,
            columnar: true,
            service_jitter: 0.0,
            observe_latency: false,
            profile: false,
        }
    }
}

struct GenRt {
    bytes: u64,
    remaining: u64,
}

struct RpState {
    node: NodeId,
    chain: ExecChain,
    /// Compiled compute-cost accounting for the stage chain.
    cost: CostModel,
    /// Output channel indices.
    outputs: Vec<usize>,
    /// Input channels still streaming.
    eos_remaining: usize,
    gen: Option<GenRt>,
    /// Non-gen source elements (receiver / grep / const), reversed so we
    /// can pop from the back.
    source_items: Vec<Value>,
    is_client: bool,
    /// Whether the RP already flushed its aggregates and closed its
    /// outputs (guards against the EOS event racing the RP's own
    /// poll-tick start event).
    finished: bool,
    /// Monitoring counters (§2.3 step v).
    elements_in: u64,
    elements_out: u64,
    /// Real time spent inside the stage chain (explain-analyze only;
    /// stays 0 unless `RunOptions::profile`). Observational — never
    /// probed, never feeds simulated time.
    wall_ns: u64,
}

/// One element riding a stream channel: either an owned scalar value or
/// a zero-copy row of an Arc-backed columnar batch (a relay survivor).
/// Column rows travel the channel without materializing a `Value`; the
/// simulated byte accounting uses the row's marshaled size, so channel
/// timing is identical either way. Consecutive rows of one batch are
/// never `PartialEq`-equal (rows differ), so column trains never merge —
/// safe, because train merging only affects equal-payload runs and
/// channel timing depends only on `(bytes, ready)`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Elem {
    /// An owned scalar element (the classic path).
    Val(Value),
    /// One row of a shared columnar batch, handed across zero-copy.
    Col(ColRow),
}

impl Elem {
    /// Simulated marshaled size — byte-identical to marshaling the
    /// materialized value ([`ColumnarBatch::row_marshaled_size`] is
    /// proven against `Value::marshaled_size`).
    fn marshaled_size(&self) -> u64 {
        match self {
            Elem::Val(v) => v.marshaled_size(),
            Elem::Col(c) => c.batch.row_marshaled_size(c.row as usize),
        }
    }
}

/// Hashes a channel element's full contents into a coalescing probe.
/// Column rows hash their *materialized* value behind a distinct tag —
/// never the Arc pointer, which would be nondeterministic across runs.
pub(crate) fn elem_shape(e: &Elem, p: &mut StateProbe<'_>) {
    match e {
        Elem::Val(v) => value_shape(v, p),
        Elem::Col(c) => {
            p.shape(11);
            match c.batch.value_at(c.row as usize) {
                Some(v) => value_shape(&v, p),
                None => p.shape(0),
            }
        }
    }
}

/// Per-channel ingress→delivery latency tracking. An element is stamped
/// with simulated time when it enters the channel (`enqueue_elem` /
/// `relay_pack`) and its stamp is closed into the histogram when the
/// element becomes visible at the subscriber (`deliver`). Channels are
/// FIFO, so the stamps form a queue: the front stamps belong to buffers
/// already transmitted (counted by `in_flight`) and deliver next; a UDP
/// drop loses the buffer *behind* those, so loss reconciliation removes
/// stamps at index `in_flight`.
struct LatTrack {
    /// Enqueue times of elements not yet delivered or lost, oldest
    /// first.
    ingress: std::collections::VecDeque<SimTime>,
    /// How many front stamps belong to transmitted, not-yet-delivered
    /// buffers.
    in_flight: usize,
    /// The channel's `elements_lost` at the last reconciliation.
    last_lost: u64,
    /// Closed ingress→delivery latencies.
    hist: scsq_sim::LatencyHistogram,
}

impl LatTrack {
    fn new() -> LatTrack {
        LatTrack {
            ingress: std::collections::VecDeque::new(),
            in_flight: 0,
            last_lost: 0,
            hist: scsq_sim::LatencyHistogram::default(),
        }
    }

    /// Latency state is result-affecting whenever a `latency(p)` RP
    /// consumes the samples, so the coalescer must track all of it:
    /// stamps extrapolate like any pending time, the counters like
    /// per-period deltas.
    fn probe(&mut self, p: &mut StateProbe<'_>) {
        p.shape(self.ingress.len() as u64);
        for t in self.ingress.iter_mut() {
            p.time(t);
        }
        p.num_usize(&mut self.in_flight);
        p.num(&mut self.last_lost);
        self.hist.probe(p);
    }
}

struct ChannelRt {
    chan: StreamChannel<Elem>,
    src_sp: SpHandle,
    dst_rp: usize,
    /// `Some` when this channel's latency is tracked: a `latency(p)` RP
    /// watches it, or `RunOptions::observe_latency` is set.
    lat: Option<LatTrack>,
}

pub(crate) struct World {
    env: Environment,
    rps: Vec<RpState>,
    channels: Vec<ChannelRt>,
    results: Vec<Value>,
    first_result_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    error: Option<EngineError>,
    /// Reusable output buffer for `process_and_emit`: taken, filled,
    /// drained, and returned on every element, so the hot path never
    /// allocates a fresh `Vec` per processed tuple.
    scratch: Vec<Value>,
    /// Per-channel metric-stream observers (`metrics(p)` RPs watching
    /// the channel's deliveries), indexed by channel. Left entirely
    /// empty when the query has no observers, so the per-delivery check
    /// is a single `is_empty()`. Immutable after set-up.
    observers: Vec<Vec<usize>>,
    /// Per-channel latency-stream observers (`latency(p)` RPs consuming
    /// one sample per delivered element), indexed by channel. Same
    /// emptiness discipline as `observers`. Immutable after set-up.
    lat_observers: Vec<Vec<usize>>,
    /// Whether explain-analyze wall-time sampling is on
    /// (`RunOptions::profile`).
    profile: bool,
    /// Whether `deliver` may hand whole batches to the columnar fast
    /// path (`RunOptions::columnar`, gated on fusion being on).
    columnar: bool,
    /// Delivered batches the columnar fast path absorbed or relayed.
    columnar_batches: u64,
    /// Value→column decompositions performed (`--columnar off` must
    /// keep this at zero: no speculative transposes).
    columnar_transposes: u64,
    /// Reusable gather buffer for a delivered run of scalar values —
    /// one move per element, the same cost the consuming per-element
    /// iteration already paid.
    val_scratch: Vec<Value>,
    /// Reusable per-element compute-finish times for the relay path.
    ready_scratch: Vec<SimTime>,
}

pub(crate) type Sim = TypedSimulator<World, Ev>;

/// The runtime's event vocabulary. The engine hot loop executes tens of
/// millions of these per query; keeping them a plain enum (instead of
/// boxed closures) removes one heap allocation and one indirect call
/// per event. Variant order mirrors the dispatch functions below.
pub(crate) enum Ev {
    /// An RP wakes at its coordinator's start tick.
    StartRp(usize),
    /// A gen_array source produces its next element.
    Produce(usize),
    /// An RP's own stream ends: flush aggregates, close outputs.
    FinishRp(usize),
    /// One stream-channel buffer cycle.
    Cycle(usize),
    /// A buffer's elements become visible at the subscriber. Column
    /// rows arrive as `Elem::Col` and reassemble into batch views
    /// zero-copy; scalar runs are gathered and processed per element or
    /// transposed for the columnar fast path.
    Deliver { ci: usize, batch: Vec<Elem> },
    /// End-of-stream control message arrives at the subscriber.
    Eos(usize),
}

impl Ev {
    /// Stable identity of an event kind + target, used by the coalescer
    /// to anchor periodic phases of the schedule.
    pub(crate) fn key(&self) -> u64 {
        let (tag, idx) = match self {
            Ev::StartRp(i) => (1u64, *i),
            Ev::Produce(i) => (2, *i),
            Ev::FinishRp(i) => (3, *i),
            Ev::Cycle(ci) => (4, *ci),
            Ev::Deliver { ci, .. } => (5, *ci),
            Ev::Eos(ci) => (6, *ci),
        };
        (tag << 56) | idx as u64
    }

    /// Walks the event's payload through a coalescing probe (pending
    /// events are part of the simulation state).
    pub(crate) fn probe(&mut self, p: &mut StateProbe<'_>) {
        p.shape(self.key());
        if let Ev::Deliver { batch, .. } = self {
            p.shape(batch.len() as u64);
            for e in batch.iter() {
                elem_shape(e, p);
            }
        }
    }
}

impl Event<World> for Ev {
    fn fire(self, world: &mut World, sim: &mut Sim) {
        match self {
            Ev::StartRp(idx) => start_rp(world, sim, idx),
            Ev::Produce(idx) => produce(world, sim, idx),
            Ev::FinishRp(idx) => finish_rp(world, sim, idx),
            Ev::Cycle(ci) => cycle(world, sim, ci),
            Ev::Deliver { ci, batch } => deliver(world, sim, ci, batch),
            Ev::Eos(ci) => eos(world, sim, ci),
        }
    }
}

/// Hashes a value's full contents into a probe's shape: tuple payloads
/// are opaque to the coalescer — any change blocks a jump.
pub(crate) fn value_shape(v: &Value, p: &mut StateProbe<'_>) {
    use scsq_ql::ArrayData;
    match v {
        Value::Integer(i) => {
            p.shape(1);
            p.shape(*i as u64);
        }
        Value::Real(r) => {
            p.shape(2);
            p.shape(r.to_bits());
        }
        Value::Str(s) => {
            p.shape(3);
            p.shape_bytes(s.as_bytes());
        }
        Value::Bool(b) => {
            p.shape(4);
            p.shape(*b as u64);
        }
        Value::Array(ArrayData::Real(xs)) => {
            p.shape(5);
            p.shape(xs.len() as u64);
            for x in xs {
                p.shape(x.to_bits());
            }
        }
        Value::Array(ArrayData::Complex(xs)) => {
            p.shape(6);
            p.shape(xs.len() as u64);
            for (re, im) in xs {
                p.shape(re.to_bits());
                p.shape(im.to_bits());
            }
        }
        Value::Array(ArrayData::Synthetic { bytes }) => {
            p.shape(7);
            p.shape(*bytes);
        }
        Value::Bag(vs) => {
            p.shape(8);
            p.shape(vs.len() as u64);
            for x in vs {
                value_shape(x, p);
            }
        }
        Value::Sp(h) => {
            p.shape(9);
            p.shape(h.0);
        }
        Value::Stream(h) => {
            p.shape(10);
            p.shape(h.0);
        }
    }
}

impl RpState {
    fn probe(&mut self, p: &mut StateProbe<'_>) {
        self.chain.probe(p, &mut value_shape);
        p.num_usize(&mut self.eos_remaining);
        p.shape(self.gen.is_some() as u64);
        if let Some(gen) = &mut self.gen {
            p.shape(gen.bytes);
            p.num(&mut gen.remaining);
        }
        p.shape(self.source_items.len() as u64);
        for v in &self.source_items {
            value_shape(v, p);
        }
        p.shape(self.finished as u64);
        p.num(&mut self.elements_in);
        p.num(&mut self.elements_out);
    }
}

impl World {
    /// Walks the entire mutable simulation state through a coalescing
    /// probe, in a fixed deterministic order.
    pub(crate) fn probe(&mut self, p: &mut StateProbe<'_>, now: SimTime) {
        let World {
            env,
            rps,
            channels,
            results,
            first_result_at,
            finished_at,
            error,
            scratch: _,
            // Immutable after set-up: the per-channel observer lists are
            // fixed by the query graph, so they carry no mutable state
            // for the coalescer to track; the columnar and profile flags
            // are run options.
            observers: _,
            lat_observers: _,
            profile: _,
            columnar: _,
            columnar_batches,
            columnar_transposes,
            val_scratch: _,
            ready_scratch: _,
        } = self;
        p.num(columnar_batches);
        p.num(columnar_transposes);
        // UDP drop decisions depend on I/O-node backlog; tell the
        // environment to guard it while any UDP channel is still live.
        let udp_active = channels
            .iter()
            .any(|c| matches!(c.chan.config().carrier, Carrier::Udp) && !c.chan.is_finished());
        env.probe(p, now, udp_active);
        for rp in rps.iter_mut() {
            rp.probe(p);
        }
        for c in channels.iter_mut() {
            c.chan.probe(env, p, elem_shape);
            p.shape(c.lat.is_some() as u64);
            if let Some(lat) = &mut c.lat {
                lat.probe(p);
            }
        }
        // The client's result sink is append-only and never read back by
        // the model: its length alone gates jumps.
        p.shape(results.len() as u64);
        p.shape(first_result_at.is_some() as u64);
        if let Some(t) = first_result_at {
            p.time(t);
        }
        p.shape(finished_at.is_some() as u64);
        if let Some(t) = finished_at {
            p.time(t);
        }
        p.shape(error.is_some() as u64);
    }
}

/// Executes a query graph on `env` to completion.
///
/// The graph is borrowed, not consumed: all per-run state (stage
/// chains, channel buffers, source cursors) is instantiated here, so
/// one compiled graph can be executed many times — the basis of the
/// prepared-query API in `ClientManager::prepare`.
///
/// # Errors
///
/// Runtime type errors inside operators, or an exceeded event budget.
pub fn run_graph(
    mut env: Environment,
    graph: &QueryGraph,
    options: &RunOptions,
) -> Result<QueryResult, EngineError> {
    // SpHandle → rp index. The client is the last rp.
    let mut rp_of: HashMap<SpHandle, usize> = HashMap::new();
    for (i, sp) in graph.sps.iter().enumerate() {
        rp_of.insert(sp.handle, i);
    }
    let client_rp = graph.sps.len();
    // Service-time jitter lives in the environment: every CPU-side
    // service (generate, marshal, compute, de-marshal) draws a factor
    // from its deterministic stream, so even within-transfer buffer
    // periods are unique and train-coalescing provably cannot fire.
    env.set_service_jitter(options.service_jitter);

    let mut rps: Vec<RpState> = Vec::with_capacity(graph.sps.len() + 1);
    let mut channels: Vec<ChannelRt> = Vec::new();
    let mut flow_counter = 0u64;

    let mut make_rp = |pipeline: &Pipeline,
                       program: &FusedProgram,
                       node: NodeId,
                       dst_rp: usize,
                       is_client: bool,
                       env: &mut Environment,
                       channels: &mut Vec<ChannelRt>,
                       rp_of: &HashMap<SpHandle, usize>|
     -> Result<RpState, EngineError> {
        let producers = pipeline.producers();
        // One channel per producer.
        for &p in producers {
            let src_rp = *rp_of.get(&p).ok_or_else(|| {
                EngineError::Runtime(format!("subscription to unknown stream process {p:?}"))
            })?;
            let src_node = if src_rp < graph.sps.len() {
                graph.sps[src_rp].node
            } else {
                node
            };
            let carrier = if src_node.cluster == ClusterName::BlueGene
                && node.cluster == ClusterName::BlueGene
            {
                Carrier::Mpi {
                    buffer: options.mpi_buffer,
                    double: options.mpi_double,
                }
            } else if options.udp_inter_cluster {
                Carrier::Udp
            } else {
                Carrier::Tcp
            };
            let cfg = ChannelConfig {
                flow: FlowId(flow_counter),
                src: src_node,
                dst: node,
                carrier,
            };
            flow_counter += 1;
            channels.push(ChannelRt {
                chan: StreamChannel::new(cfg, env),
                src_sp: p,
                dst_rp,
                lat: None,
            });
        }
        let (gen, source_items) = match &pipeline.input {
            InputKind::Gen { bytes, count } => (
                Some(GenRt {
                    bytes: *bytes,
                    remaining: *count,
                }),
                Vec::new(),
            ),
            InputKind::Const { values } => {
                let mut items = values.clone();
                items.reverse();
                (None, items)
            }
            InputKind::Grep { pattern, file } => {
                let mut items = funcs::grep(pattern, file);
                items.reverse();
                (None, items)
            }
            InputKind::Receiver {
                name,
                arrays,
                samples,
            } => {
                let mut items: Vec<Value> = (0..*arrays)
                    .map(|i| funcs::receiver_array(name, i, *samples))
                    .collect();
                items.reverse();
                (None, items)
            }
            InputKind::Receive { .. } => (None, Vec::new()),
            // Observers subscribe to nothing: their samples are
            // synthesized by `deliver` as observed channels deliver.
            InputKind::Metrics { .. } | InputKind::Latency { .. } => (None, Vec::new()),
        };
        let mut chain = ExecChain::new(program, options.fuse);
        if options.profile {
            chain.enable_profiling();
        }
        Ok(RpState {
            node,
            chain,
            cost: program.cost_model(),
            outputs: Vec::new(),
            eos_remaining: producers.len(),
            gen,
            source_items,
            is_client,
            finished: false,
            elements_in: 0,
            elements_out: 0,
            wall_ns: 0,
        })
    };

    for (i, sp) in graph.sps.iter().enumerate() {
        let rp = make_rp(
            &sp.pipeline,
            &sp.program,
            sp.node,
            i,
            false,
            &mut env,
            &mut channels,
            &rp_of,
        )?;
        rps.push(rp);
    }
    let client = make_rp(
        &graph.client,
        &graph.client_program,
        graph.client_node,
        client_rp,
        true,
        &mut env,
        &mut channels,
        &rp_of,
    )?;
    rps.push(client);

    // Wire producer output lists.
    for (ci, ch) in channels.iter().enumerate() {
        let src_rp = rp_of[&ch.src_sp];
        rps[src_rp].outputs.push(ci);
    }

    // Wire stream observers: a `metrics(p)` or `latency(p)` RP watches
    // every channel whose producer is one of its targets, and its
    // stream ends when the last watched channel delivers EOS. Channels
    // are all created by now, so the watch lists are final.
    let mut observers: Vec<Vec<usize>> = Vec::new();
    let mut lat_observers: Vec<Vec<usize>> = Vec::new();
    for (i, rp) in rps.iter_mut().enumerate() {
        let input = if i < graph.sps.len() {
            &graph.sps[i].pipeline.input
        } else {
            &graph.client.input
        };
        let (targets, lists) = match input {
            InputKind::Metrics { targets } => (targets, &mut observers),
            InputKind::Latency { targets } => (targets, &mut lat_observers),
            _ => continue,
        };
        if lists.is_empty() {
            *lists = vec![Vec::new(); channels.len()];
        }
        let mut watched = 0;
        for (ci, ch) in channels.iter().enumerate() {
            if targets.contains(&ch.src_sp) {
                lists[ci].push(i);
                watched += 1;
            }
        }
        rp.eos_remaining = watched;
    }
    // Install latency tracking where it is consumed: on every channel a
    // `latency(p)` RP watches, and on all channels when the run asks
    // for channel-report histograms. Untracked channels keep `None` and
    // pay nothing per element.
    for (ci, ch) in channels.iter_mut().enumerate() {
        let watched = lat_observers.get(ci).is_some_and(|l| !l.is_empty());
        if watched || options.observe_latency {
            ch.lat = Some(LatTrack::new());
        }
    }

    let world = World {
        env,
        rps,
        channels,
        results: Vec::new(),
        first_result_at: None,
        finished_at: None,
        error: None,
        scratch: Vec::new(),
        observers,
        lat_observers,
        profile: options.profile,
        columnar: options.columnar && options.fuse,
        columnar_batches: 0,
        columnar_transposes: 0,
        val_scratch: Vec::new(),
        ready_scratch: Vec::new(),
    };
    // Pending-event population is bounded by the graph shape (each RP
    // has at most one self-scheduled tick; each channel a handful of
    // in-flight cycle/deliver/eos events), so reserve once up front.
    let capacity = world.rps.len() + world.channels.len() * 4;
    let mut sim =
        TypedSimulator::with_capacity(world, capacity).with_event_limit(options.event_limit);

    // Start every RP per its coordinator's discipline: BlueGene RPs wake
    // at the bgCC's next poll tick (§2.2), Linux RPs immediately.
    for idx in 0..sim.world().rps.len() {
        let cluster = sim.world().rps[idx].node.cluster;
        let start = Coordinator::for_cluster(cluster).rp_start_time(SimTime::ZERO);
        sim.schedule_at(start, Ev::StartRp(idx));
    }

    let (end, coalesce) = if options.coalesce {
        crate::train::run_coalesced(&mut sim)
    } else {
        (sim.run_to_completion(), scsq_sim::CoalesceStats::default())
    };
    let events = sim.events_executed();
    let events_pending_hwm = sim.events_pending_high_water() as u64;
    let exceeded = sim.limit_exceeded();
    let world = sim.into_world();
    if let Some(err) = world.error {
        return Err(err);
    }
    if exceeded {
        return Err(EngineError::Runtime(format!(
            "query exceeded the event budget of {} (RunOptions::event_limit)",
            options.event_limit
        )));
    }
    let finished = world.finished_at.unwrap_or(end);
    let reports: Vec<ChannelReport> = world
        .channels
        .iter()
        .map(|c| {
            let cfg = c.chan.config();
            let stats = c.chan.stats();
            ChannelReport {
                src: cfg.src,
                dst: cfg.dst,
                carrier: match cfg.carrier {
                    Carrier::Mpi { .. } => "mpi".to_string(),
                    Carrier::Tcp => "tcp".to_string(),
                    Carrier::Udp => "udp".to_string(),
                },
                bytes: stats.bytes_delivered,
                bytes_enqueued: stats.bytes_enqueued,
                buffers_sent: stats.buffers_sent,
                buffers_dropped: stats.buffers_dropped,
                elements_lost: stats.elements_lost,
                queue_peak_trains: stats.queue_peak_trains,
                first_send: stats.first_send,
                last_delivery: stats.last_delivery,
                latency: c.lat.as_ref().map(|l| l.hist).unwrap_or_default(),
            }
        })
        .collect();
    let rp_reports = world
        .rps
        .iter()
        .map(|rp| crate::measure::RpReport {
            node: rp.node,
            elements_in: rp.elements_in,
            elements_out: rp.elements_out,
            node_cpu_busy: world.env.cpu_busy(rp.node),
            is_client: rp.is_client,
        })
        .collect();
    let profile = options.profile.then(|| {
        let rp_profiles = world
            .rps
            .iter()
            .enumerate()
            .map(|(i, rp)| {
                let pipeline = if i < graph.sps.len() {
                    &graph.sps[i].pipeline
                } else {
                    &graph.client
                };
                let stages = rp
                    .chain
                    .tally()
                    .iter()
                    .zip(&pipeline.stages)
                    .map(|(t, s)| crate::profile::StageProfile {
                        stage: crate::explain::describe_stage(s),
                        calls: t.calls,
                        elems_in: t.elems_in,
                        elems_out: t.elems_out,
                    })
                    .collect();
                crate::profile::RpProfile {
                    rp: i,
                    node: rp.node,
                    is_client: rp.is_client,
                    input: crate::explain::describe_input(&pipeline.input),
                    elements_in: rp.elements_in,
                    elements_out: rp.elements_out,
                    sim_busy: world.env.cpu_busy(rp.node),
                    wall_ns: rp.wall_ns,
                    stages,
                }
            })
            .collect();
        crate::profile::ProfileReport { rps: rp_profiles }
    });
    Ok(QueryResult::new(
        world.results,
        world.first_result_at,
        finished,
        QueryStats {
            channels: reports,
            rp_reports,
            events,
            events_pending_hwm,
            rps: world.rps.len(),
            coalesce,
            fused: options.fuse,
            columnar_batches: world.columnar_batches,
            columnar_transposes: world.columnar_transposes,
            jitter_draws: world.env.jitter_draws(),
            profile,
        },
    ))
}

fn start_rp(world: &mut World, sim: &mut Sim, idx: usize) {
    if world.error.is_some() {
        return;
    }
    if world.rps[idx].gen.is_some() {
        produce(world, sim, idx);
    } else if !world.rps[idx].source_items.is_empty() {
        drain_source(world, sim, idx);
    } else if world.rps[idx].eos_remaining == 0 {
        // A source with no elements at all (e.g. grep with no matches, or
        // a pure Const that is empty): finish immediately.
        finish_rp(world, sim, idx);
    }
}

/// One gen_array production step: generate the next array, feed it
/// through the local SQEP, schedule the next step when the CPU is done.
fn produce(world: &mut World, sim: &mut Sim, idx: usize) {
    if world.error.is_some() {
        return;
    }
    let node = world.rps[idx].node;
    let (bytes, exhausted) = {
        let gen = world.rps[idx].gen.as_mut().expect("produce on non-gen rp");
        if gen.remaining == 0 {
            (0, true)
        } else {
            gen.remaining -= 1;
            (gen.bytes, false)
        }
    };
    if exhausted {
        finish_rp(world, sim, idx);
        return;
    }
    let value = Value::synthetic_array(bytes);
    let now = sim.now();
    let done = world.env.generate(node, bytes, now);
    process_and_emit(world, sim, idx, value, None, done);
    sim.schedule_at(done, Ev::Produce(idx));
}

/// Emits all items of a non-gen source (receiver / grep / const), pacing
/// each on the node CPU, then finishes.
fn drain_source(world: &mut World, sim: &mut Sim, idx: usize) {
    if world.error.is_some() {
        return;
    }
    let node = world.rps[idx].node;
    let mut t = sim.now();
    while let Some(item) = world.rps[idx].source_items.pop() {
        t = world.env.generate(node, item.marshaled_size(), t);
        process_and_emit(world, sim, idx, item, None, t);
        if world.error.is_some() {
            return;
        }
    }
    sim.schedule_at(t, Ev::FinishRp(idx));
}

/// Runs one element through an RP's stage chain and forwards the outputs
/// to its subscribers (or records them, for the client).
fn process_and_emit(
    world: &mut World,
    sim: &mut Sim,
    idx: usize,
    value: Value,
    from: Option<SpHandle>,
    at: SimTime,
) {
    let elem_bytes = value.marshaled_size();
    world.rps[idx].elements_in += 1;
    // Charge compute time for expensive stages (§5: "it is also
    // important to analyze the performance of continuous queries
    // involving expensive functions"). The compiled cost model tracks
    // how each stage transforms the element size (decimation halves it,
    // so a radix2-style plan's FFTs run on half-size arrays) and memoizes
    // the answer for the streaming case of same-size elements. The
    // charge applies to every element — including ones an aggregate
    // absorbs.
    let cost = world.rps[idx].cost.cost(elem_bytes);
    let node = world.rps[idx].node;
    let ready = world.env.compute(node, cost, at);
    // Process into the world's reusable scratch buffer: no per-element
    // `Vec` on the hot path.
    let mut out = std::mem::take(&mut world.scratch);
    out.clear();
    let t0 = world.profile.then(std::time::Instant::now);
    let res = world.rps[idx].chain.process_into(value, from, &mut out);
    if let Some(t0) = t0 {
        world.rps[idx].wall_ns += t0.elapsed().as_nanos() as u64;
    }
    if let Err(e) = res {
        world.error = Some(e);
        world.scratch = out;
        return;
    }
    if !out.is_empty() {
        emit(world, sim, idx, &mut out, ready);
    }
    world.scratch = out;
}

/// Forwards processed elements to an RP's subscribers (or records them,
/// for the client), draining `out` and leaving its capacity for reuse.
fn emit(world: &mut World, sim: &mut Sim, idx: usize, out: &mut Vec<Value>, at: SimTime) {
    world.rps[idx].elements_out += out.len() as u64;
    if world.rps[idx].is_client {
        if !out.is_empty() && world.first_result_at.is_none() {
            world.first_result_at = Some(sim.now());
        }
        world.results.append(out);
        return;
    }
    let n_out = world.rps[idx].outputs.len();
    // Fan each value out by index, moving it into the last channel
    // instead of cloning once per subscriber.
    for v in out.drain(..) {
        let mut v = Some(v);
        for oi in 0..n_out {
            let ci = world.rps[idx].outputs[oi];
            let item = if oi + 1 == n_out {
                v.take().expect("value present for the last channel")
            } else {
                v.as_ref()
                    .expect("value present until the last channel")
                    .clone()
            };
            let size = item.marshaled_size();
            enqueue_elem(world, sim, ci, Elem::Val(item), size, at);
        }
    }
}

/// Enqueues one element on a channel, scheduling a buffer cycle only
/// when the enqueue completes another full buffer's worth of pending
/// bytes. Under the schedule-per-enqueue baseline, the cycles that
/// actually transmit are exactly the ones running at these crossing
/// times: a cycle event transmits at most one buffer, needs a full
/// buffer pending to do it, and the self-sustaining `next_cycle` chain
/// never fires before the crossing (it schedules at
/// `ready.max(constraint)`). Cycles between crossings only shuffle
/// bytes from the queue into the filling buffer — work the next
/// transmitting cycle does anyway, with identical results, because
/// transmit times derive from the data's own ready times, never from
/// when the cycle runs. Scheduling one cycle per crossing (not just on
/// the 0→1 edge) therefore reproduces the baseline's transmit call
/// times and order exactly — which matters because `env.marshal` runs a
/// stateful per-node server whose serve() call order is part of the
/// simulated schedule — while keeping the event count O(transmits)
/// instead of O(enqueues). The end-of-stream flush is driven by
/// `finish_rp` and the cycle's own `next_cycle` chain.
fn enqueue_elem(world: &mut World, sim: &mut Sim, ci: usize, item: Elem, size: u64, at: SimTime) {
    if let Some(lat) = &mut world.channels[ci].lat {
        lat.ingress.push_back(at);
    }
    let chan = &mut world.channels[ci].chan;
    let before = chan.pending_buffers(&world.env);
    let when = chan.enqueue(item, size, at);
    if chan.pending_buffers(&world.env) > before {
        sim.schedule_at(when.max(sim.now()), Ev::Cycle(ci));
    }
}

/// End of an RP's own stream: flush aggregates, close output channels.
fn finish_rp(world: &mut World, sim: &mut Sim, idx: usize) {
    if world.error.is_some() || world.rps[idx].finished {
        return;
    }
    world.rps[idx].finished = true;
    let t0 = world.profile.then(std::time::Instant::now);
    let finals = world.rps[idx].chain.finish();
    if let Some(t0) = t0 {
        world.rps[idx].wall_ns += t0.elapsed().as_nanos() as u64;
    }
    let mut finals = match finals {
        Ok(f) => f,
        Err(e) => {
            world.error = Some(e);
            return;
        }
    };
    let now = sim.now();
    if !finals.is_empty() || world.rps[idx].is_client {
        emit(world, sim, idx, &mut finals, now);
    }
    if world.rps[idx].is_client {
        world.finished_at = Some(now);
        return;
    }
    for oi in 0..world.rps[idx].outputs.len() {
        let ci = world.rps[idx].outputs[oi];
        let when = world.channels[ci].chan.finish(now);
        sim.schedule_at(when.max(now), Ev::Cycle(ci));
    }
}

/// One stream-channel buffer cycle.
fn cycle(world: &mut World, sim: &mut Sim, ci: usize) {
    if world.error.is_some() {
        return;
    }
    let out = {
        let ch = &mut world.channels[ci];
        let out = ch.chan.cycle(&mut world.env, sim.now());
        if let Some(lat) = &mut ch.lat {
            // Reconcile losses first: a dropped buffer's elements sit
            // behind the already-transmitted (in-flight) stamps, so
            // their removal point is `in_flight`. Then a transmitted
            // buffer moves its elements into flight; one cycle
            // transmits at most one buffer, so drop and deliver are
            // exclusive but the order below is safe either way.
            let lost_total = ch.chan.stats().elements_lost;
            for _ in lat.last_lost..lost_total {
                lat.ingress.remove(lat.in_flight);
            }
            lat.last_lost = lost_total;
            if out.delivered_at.is_some() {
                lat.in_flight += out.delivered.len();
            }
        }
        out
    };
    if let Some(t) = out.delivered_at {
        if scsq_sim::obs::enabled() {
            let now = sim.now();
            scsq_sim::obs::record_span(scsq_sim::Span {
                name: "transmit",
                cat: "channel",
                tid: 2000 + ci as u64,
                ts_ns: now.as_nanos(),
                dur_ns: t.max(now).since(now).as_nanos(),
            });
        }
        let batch = out.delivered;
        sim.schedule_at(t.max(sim.now()), Ev::Deliver { ci, batch });
    }
    if let Some(t) = out.next_cycle {
        sim.schedule_at(t.max(sim.now()), Ev::Cycle(ci));
    }
    if let Some(t) = out.eos_at {
        sim.schedule_at(t.max(sim.now()), Ev::Eos(ci));
    }
}

/// Elements of one buffer become visible at the subscriber.
///
/// The delivered run is partitioned in order: consecutive `Elem::Val`s
/// form scalar runs (gathered into a reusable buffer, then transposed
/// for the columnar fast path or walked per element); consecutive
/// `Elem::Col`s sharing one backing batch with contiguous ascending
/// rows reassemble the upstream columnar view **zero-copy** — no
/// re-marshaling, no per-row materialization — before the same
/// absorb/relay/fallback ladder. Processing order is exactly delivery
/// order either way.
fn deliver(world: &mut World, sim: &mut Sim, ci: usize, mut batch: Vec<Elem>) {
    if world.error.is_some() {
        return;
    }
    let dst = world.channels[ci].dst_rp;
    let from = world.channels[ci].src_sp;
    let now = sim.now();
    let span_busy0 = scsq_sim::obs::enabled().then(|| world.env.cpu_busy(world.rps[dst].node));
    // Self-measurement (the paper's premise: stream queries over the
    // system itself): observers of this channel get one sample per
    // delivered buffer. The whole block is one `is_empty()` branch for
    // queries without observers.
    if !world.observers.is_empty() && !world.observers[ci].is_empty() {
        let bytes: u64 = batch.iter().map(Elem::marshaled_size).sum();
        let n = world.observers[ci].len();
        for k in 0..n {
            let o = world.observers[ci][k];
            let sample = crate::ops::metric_sample(ci, now.as_nanos(), bytes);
            process_and_emit(world, sim, o, sample, None, now);
            if world.error.is_some() {
                return;
            }
        }
    }
    // Latency egress: the delivered elements close the channel's oldest
    // in-flight ingress stamps, in FIFO order. One `is_some()` branch
    // for untracked channels.
    if world.channels[ci].lat.is_some() {
        let has_obs = !world.lat_observers.is_empty() && !world.lat_observers[ci].is_empty();
        let n = batch.len();
        let lat = world.channels[ci].lat.as_mut().expect("checked above");
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..n {
            let Some(t) = lat.ingress.pop_front() else {
                break;
            };
            lat.in_flight = lat.in_flight.saturating_sub(1);
            let d = now.since(t).as_nanos();
            lat.hist.record(d);
            if has_obs {
                samples.push(d);
            }
        }
        if has_obs {
            // One sample per delivered element to every `latency(p)`
            // observer of this channel, in delivery order.
            let m = world.lat_observers[ci].len();
            for k in 0..m {
                let o = world.lat_observers[ci][k];
                for &s in &samples {
                    process_and_emit(world, sim, o, Value::Integer(s as i64), None, now);
                    if world.error.is_some() {
                        return;
                    }
                }
            }
        }
    }
    let mut vals = std::mem::take(&mut world.val_scratch);
    vals.clear();
    // A pending column group: (backing view, first row, length).
    let mut cols: Option<(ColumnarBatch, u32, u32)> = None;
    for e in batch.drain(..) {
        match e {
            Elem::Val(v) => {
                if let Some(g) = cols.take() {
                    deliver_col_group(world, sim, dst, from, g, now);
                    if world.error.is_some() {
                        world.val_scratch = vals;
                        return;
                    }
                }
                vals.push(v);
            }
            Elem::Col(c) => {
                if !vals.is_empty() {
                    deliver_value_run(world, sim, dst, from, &mut vals, now);
                    if world.error.is_some() {
                        world.val_scratch = vals;
                        return;
                    }
                }
                cols = Some(match cols.take() {
                    Some((b, first, len)) if c.batch.same_view(&b) && c.row == first + len => {
                        (b, first, len + 1)
                    }
                    Some(g) => {
                        deliver_col_group(world, sim, dst, from, g, now);
                        if world.error.is_some() {
                            world.val_scratch = vals;
                            return;
                        }
                        (c.batch, c.row, 1)
                    }
                    None => (c.batch, c.row, 1),
                });
            }
        }
    }
    if let Some(g) = cols.take() {
        deliver_col_group(world, sim, dst, from, g, now);
    }
    if !vals.is_empty() && world.error.is_none() {
        deliver_value_run(world, sim, dst, from, &mut vals, now);
    }
    world.val_scratch = vals;
    if let Some(busy0) = span_busy0 {
        // The RP's processing of this buffer, as simulated CPU time it
        // accrued while handling the delivery.
        let busy1 = world.env.cpu_busy(world.rps[dst].node);
        scsq_sim::obs::record_span(scsq_sim::Span {
            name: "deliver",
            cat: "sp",
            tid: 1000 + dst as u64,
            ts_ns: now.as_nanos(),
            dur_ns: busy1.saturating_sub(busy0).as_nanos(),
        });
    }
    // Hand the drained delivery vector's capacity back to the channel
    // for its next transmit (error paths above simply drop it).
    world.channels[ci].chan.recycle(batch);
}

/// Processes one run of scalar values delivered back-to-back: transpose
/// and try the columnar ladder when the destination chain can use
/// columns at all (`--columnar off`, an interpreted chain, or a
/// non-qualifying chain skips the decomposition entirely), else walk
/// the run per element.
fn deliver_value_run(
    world: &mut World,
    sim: &mut Sim,
    dst: usize,
    from: SpHandle,
    run: &mut Vec<Value>,
    now: SimTime,
) {
    if world.columnar && run.len() > 1 && world.rps[dst].chain.wants_columnar() {
        let cols = ColumnarBatch::from_values(run);
        world.columnar_transposes += 1;
        if absorb_columns(world, dst, &cols, now) || relay_columns(world, sim, dst, &cols, now) {
            run.clear();
            return;
        }
    }
    for v in run.drain(..) {
        process_and_emit(world, sim, dst, v, Some(from), now);
        if world.error.is_some() {
            return;
        }
    }
}

/// Processes one reassembled column group: the delivered rows form a
/// contiguous slice of the upstream batch, so the view is shared
/// storage — the zero-copy hand-off. Falls back to materializing each
/// row as a `Value` when the chain declines columns.
fn deliver_col_group(
    world: &mut World,
    sim: &mut Sim,
    dst: usize,
    from: SpHandle,
    (batch, first, len): (ColumnarBatch, u32, u32),
    now: SimTime,
) {
    let view = batch.slice(first as usize, (first + len) as usize);
    if absorb_columns(world, dst, &view, now) || relay_columns(world, sim, dst, &view, now) {
        return;
    }
    for row in 0..view.rows() {
        let Some(v) = view.value_at(row) else {
            continue;
        };
        process_and_emit(world, sim, dst, v, Some(from), now);
        if world.error.is_some() {
            return;
        }
    }
}

/// Columnar absorption: the whole batch feeds an absorbing chain with
/// one dispatch per typed column instead of one per element. Admission
/// (`FusedChain::columnar_admit_cols`) guarantees the batch's elements
/// share one marshaled size whenever the chain charges compute cost, so
/// the per-element charge loop collapses to one bulk call that serves
/// the same total and draws the jitter stream exactly as many times —
/// simulated time and RNG positions stay byte-identical to the
/// per-element walk (`Environment::compute_bulk`).
fn absorb_columns(world: &mut World, dst: usize, cols: &ColumnarBatch, now: SimTime) -> bool {
    let Some(admit) = world.rps[dst].chain.columnar_admit_cols(cols) else {
        return false;
    };
    let n = admit.rows as u64;
    let cost = world.rps[dst].cost.cost(admit.elem_bytes);
    let node = world.rps[dst].node;
    let span_busy0 = scsq_sim::obs::enabled().then(|| world.env.cpu_busy(node));
    world.env.compute_bulk(node, cost, n, now);
    // An absorbed batch emits nothing before end of stream; only the
    // monitoring counters need per-element accounting.
    world.rps[dst].elements_in += n;
    world.columnar_batches += 1;
    let t0 = world.profile.then(std::time::Instant::now);
    if let Err(e) = world.rps[dst].chain.process_admitted(admit) {
        world.error = Some(e);
    }
    if let Some(t0) = t0 {
        world.rps[dst].wall_ns += t0.elapsed().as_nanos() as u64;
    }
    if let Some(busy0) = span_busy0 {
        let busy1 = world.env.cpu_busy(node);
        scsq_sim::obs::record_span(scsq_sim::Span {
            name: "absorb",
            cat: "columnar",
            tid: 3000 + dst as u64,
            ts_ns: now.as_nanos(),
            dur_ns: busy1.saturating_sub(busy0).as_nanos(),
        });
    }
    true
}

/// Columnar relay: a re-emitting chain (transforms + take, no absorber)
/// processes the whole batch with column kernels and forwards the
/// surviving rows as `Elem::Col` handles to the shared output batch —
/// the cross-SP column relay. Byte-identity with the scalar walk:
/// the environment's compute server and the channels are disjoint
/// state, and `pending_buffers` reads only configuration-derived
/// bounds, so charging all elements first
/// (`Environment::compute_each`, draw-for-draw identical to n scalar
/// `compute` calls at one `ready`) and then enqueueing all survivors —
/// each at its source element's own finish time, in element order, in
/// channel order — reproduces the interleaved schedule exactly.
fn relay_columns(
    world: &mut World,
    sim: &mut Sim,
    dst: usize,
    cols: &ColumnarBatch,
    now: SimTime,
) -> bool {
    if world.rps[dst].is_client {
        // The client sink records owned values; relaying column handles
        // into the result set would only defer the materialization.
        return false;
    }
    let Some(admit) = world.rps[dst].chain.relay_admit_cols(cols) else {
        return false;
    };
    let n = admit.rows;
    let cost = world.rps[dst].cost.cost(admit.elem_bytes);
    let node = world.rps[dst].node;
    let mut readies = std::mem::take(&mut world.ready_scratch);
    world
        .env
        .compute_each(node, cost, n as u64, now, &mut readies);
    world.rps[dst].elements_in += n as u64;
    world.columnar_batches += 1;
    let t0 = world.profile.then(std::time::Instant::now);
    let (out, sel) = world.rps[dst].chain.process_relayed(admit);
    if let Some(t0) = t0 {
        world.rps[dst].wall_ns += t0.elapsed().as_nanos() as u64;
    }
    let m = out.rows();
    world.rps[dst].elements_out += m as u64;
    let n_out = world.rps[dst].outputs.len();
    if m > 0 && n_out > 0 {
        if let Some(size) = out.uniform_row_size() {
            relay_pack(world, sim, dst, &out, sel.as_ref(), &readies, size, now);
            world.ready_scratch = readies;
            return true;
        }
    }
    for j in 0..m {
        // Output row j came from input row sel[j] (or j itself when the
        // output is a prefix): forward at that element's compute-finish
        // time, exactly like the scalar emit.
        let src_row = sel.as_ref().map_or(j, |s| s.rows()[j] as usize);
        let at = readies[src_row];
        let size = out.row_marshaled_size(j);
        for oi in 0..n_out {
            let ci = world.rps[dst].outputs[oi];
            let item = Elem::Col(ColRow {
                batch: out.clone(),
                row: j as u32,
            });
            enqueue_elem(world, sim, ci, item, size, at);
        }
    }
    world.ready_scratch = readies;
    true
}

/// Forward a relayed batch's survivors as one send-queue pack per
/// output channel instead of `m` per-element enqueues.
///
/// Byte-identity with the per-element loop: the pack carries each
/// survivor's own ready time and the shared uniform marshaled size, so
/// packing, buffer boundaries, delivery grouping, and corruption all
/// still happen per element inside the channel. The only other effect
/// of the per-element loop is its buffer-crossing `Ev::Cycle`
/// schedules, which this reproduces arithmetically: with every element
/// `size` bytes, the element whose enqueue first crosses the `k`-th
/// boundary past `base` pending bytes is
/// `r = ceil((k*B - base%B) / size) - 1`, and the per-element path
/// schedules that crossing at `readies[r].max(now)`. An element wider
/// than a whole buffer crosses several boundaries with one enqueue but
/// still schedules one cycle, hence the consecutive-`r` dedup. Emitting
/// the schedules sorted by (element, channel) reproduces the
/// interleaved loop's insertion order, which matters for
/// equal-timestamp events feeding the shared per-node marshal server.
#[allow(clippy::too_many_arguments)]
fn relay_pack(
    world: &mut World,
    sim: &mut Sim,
    dst: usize,
    out: &ColumnarBatch,
    sel: Option<&SelectionVector>,
    readies: &[SimTime],
    size: u64,
    now: SimTime,
) {
    let m = out.rows();
    // Survivor ready times in output-row order: nondecreasing, because
    // selections ascend and the compute server finishes in FIFO order.
    let survivor_readies: Vec<SimTime> = match sel {
        Some(s) => s.rows().iter().map(|&r| readies[r as usize]).collect(),
        None => readies[..m].to_vec(),
    };
    let n_out = world.rps[dst].outputs.len();
    let mut crossings: Vec<(usize, usize)> = Vec::new();
    for oi in 0..n_out {
        let ci = world.rps[dst].outputs[oi];
        let chan = &mut world.channels[ci].chan;
        let bsize = chan.buffer_bytes(&world.env);
        let base = chan.pending_bytes();
        let before = base / bsize;
        let after = (base + size * m as u64) / bsize;
        let mut last_r = usize::MAX;
        for k in 1..=(after - before) {
            let target = (before + k) * bsize;
            let r = ((target - base).div_ceil(size) - 1) as usize;
            if r != last_r {
                crossings.push((r, oi));
                last_r = r;
            }
        }
        let items: Vec<Elem> = (0..m)
            .map(|j| {
                Elem::Col(ColRow {
                    batch: out.clone(),
                    row: j as u32,
                })
            })
            .collect();
        chan.enqueue_pack(items, size, survivor_readies.clone());
        if let Some(lat) = &mut world.channels[ci].lat {
            // Ingress stamps: each survivor enters the channel at its
            // own compute-finish time, same as the per-element loop.
            lat.ingress.extend(survivor_readies.iter().copied());
        }
    }
    crossings.sort_unstable();
    for (r, oi) in crossings {
        let ci = world.rps[dst].outputs[oi];
        sim.schedule_at(survivor_readies[r].max(now), Ev::Cycle(ci));
    }
}

/// End-of-stream control message arrives at the subscriber (§2.2).
fn eos(world: &mut World, sim: &mut Sim, ci: usize) {
    if world.error.is_some() {
        return;
    }
    let dst = world.channels[ci].dst_rp;
    let rp = &mut world.rps[dst];
    assert!(rp.eos_remaining > 0, "duplicate EOS on channel {ci}");
    rp.eos_remaining -= 1;
    if rp.eos_remaining == 0 {
        finish_rp(world, sim, dst);
    }
    // Observers of this channel saw its last sample: their metric
    // stream shrinks by one live input.
    if !world.observers.is_empty() {
        let n = world.observers[ci].len();
        for k in 0..n {
            let o = world.observers[ci][k];
            let orp = &mut world.rps[o];
            assert!(orp.eos_remaining > 0, "duplicate observer EOS on {ci}");
            orp.eos_remaining -= 1;
            if orp.eos_remaining == 0 {
                finish_rp(world, sim, o);
            }
        }
    }
    // Same for latency observers: this channel delivers no further
    // elements, so no further latency samples.
    if !world.lat_observers.is_empty() {
        let n = world.lat_observers[ci].len();
        for k in 0..n {
            let o = world.lat_observers[ci][k];
            let orp = &mut world.rps[o];
            assert!(
                orp.eos_remaining > 0,
                "duplicate latency-observer EOS on {ci}"
            );
            orp.eos_remaining -= 1;
            if orp.eos_remaining == 0 {
                finish_rp(world, sim, o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::placement::PlacementPolicy;
    use scsq_ql::{parse_statement, Catalog};

    fn run(src: &str) -> Result<QueryResult, EngineError> {
        run_opts(src, &RunOptions::default())
    }

    fn run_opts(src: &str, options: &RunOptions) -> Result<QueryResult, EngineError> {
        let mut env = Environment::lofar();
        let catalog = Catalog::new();
        let stmt = parse_statement(src).expect("parses");
        let graph = QueryBuilder::new(&mut env, &catalog, PlacementPolicy::Naive, options)
            .build(&stmt, &[])?;
        run_graph(env, &graph, options)
    }

    #[test]
    fn p2p_count_reaches_the_client() {
        // Miniature of the paper's §3.1 point-to-point query: 10 arrays
        // of 100 KB.
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1);")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(10)]);
        assert!(r.finished() > SimTime::ZERO);
        // One MPI channel (a→b) and one TCP channel (b→client).
        let mpi: Vec<_> = r
            .stats()
            .channels
            .iter()
            .filter(|c| c.carrier == "mpi")
            .collect();
        assert_eq!(mpi.len(), 1);
        assert_eq!(mpi[0].bytes, 10 * 100_009);
    }

    #[test]
    fn merge_counts_both_streams() {
        let r = run("select extract(c) from sp a, sp b, sp c
             where c=sp(count(merge({a,b})), 'bg',0)
             and a=sp(gen_array(50000,8),'bg',1)
             and b=sp(gen_array(50000,8),'bg',4);")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(16)]);
        // Each 50 KB synthetic array marshals to 1 (tag) + 9 (header)
        // + 50_000 payload bytes.
        assert_eq!(r.bytes_into(NodeId::bg(0)), 16 * 50_009);
    }

    #[test]
    fn inbound_query1_shape_counts_all_arrays() {
        let r = run("select extract(c) from
             bag of sp a, sp b, sp c, integer n
             where c=sp(extract(b), 'bg')
             and b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(100000,5)
                        from integer i where i in iota(1,n)), 'be', 1)
             and n=3;")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(15)]);
        // All inbound traffic crossed be → bg.
        assert_eq!(
            r.bytes_between(ClusterName::BackEnd, ClusterName::BlueGene),
            15 * 100_009
        );
    }

    #[test]
    fn sum_of_counts_matches_total() {
        // Query 3 shape in miniature.
        let r = run("select extract(c) from
             bag of sp a, bag of sp b, sp c, integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv((select streamof(count(extract(p)))
                        from sp p where p in a), 'bg', inPset(1))
             and a=spv((select gen_array(100000,4)
                        from integer i where i in iota(1,n)), 'be', 1)
             and n=3;")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(12)]);
    }

    #[test]
    fn grep_mapreduce_delivers_matching_lines() {
        let r = run("merge(spv(
                select grep(\"pulsar\", filename(i))
                from integer i
                where i in iota(1,4)));")
        .unwrap();
        let expected: usize = (1..=4)
            .map(|i| funcs::grep("pulsar", &funcs::filename(i)).len())
            .sum();
        assert_eq!(r.values().len(), expected);
        assert!(expected > 0);
        for v in r.values() {
            assert!(v.as_str().unwrap().contains("pulsar"));
        }
    }

    #[test]
    fn empty_grep_still_terminates() {
        let r = run("merge(spv(
                select grep(\"zebra\", filename(i))
                from integer i where i in iota(1,2)));")
        .unwrap();
        assert!(r.values().is_empty());
        assert!(r.finished() >= SimTime::ZERO);
    }

    #[test]
    fn double_buffering_speeds_up_large_buffer_mpi() {
        let q = "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(1000000,10),'bg',1);";
        let single = run_opts(
            q,
            &RunOptions {
                mpi_buffer: 100_000,
                mpi_double: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let double = run_opts(
            q,
            &RunOptions {
                mpi_buffer: 100_000,
                mpi_double: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(single.values(), double.values());
        assert!(double.finished() < single.finished());
    }

    #[test]
    fn windowed_aggregate_runs_end_to_end() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(winagg(extract(a), 2, 2, 'count'), 'bg', 0)
             and a=sp(gen_array(10000,6),'bg',1);")
        .unwrap();
        assert_eq!(
            r.values(),
            &[Value::Integer(2), Value::Integer(2), Value::Integer(2)]
        );
    }

    #[test]
    fn event_budget_exhaustion_is_an_error_not_a_panic() {
        let err = run_opts(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000000,100),'bg',1);",
            &RunOptions {
                event_limit: 50,
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("event budget"), "{err}");
    }

    #[test]
    fn first_result_precedes_completion_for_streams() {
        // A relay query streams many values; the first reaches the
        // client well before the stream completes.
        let r = run("select extract(b) from sp a, sp b
             where b=sp(extract(a), 'bg', 0)
             and a=sp(gen_array(50000,20),'bg',1);")
        .unwrap();
        assert_eq!(r.values().len(), 20);
        let first = r.first_result().expect("values arrived");
        assert!(first < r.finished(), "{first} !< {}", r.finished());
    }

    #[test]
    fn max_min_avg_aggregates_run_end_to_end() {
        let q = |agg: &str| {
            format!(
                "select extract(b) from sp src, sp b
                 where b=sp(streamof({agg}(extract(src))), 'bg')
                 and src=sp(streamof(iota(3,9)), 'be');"
            )
        };
        assert_eq!(run(&q("max")).unwrap().values(), &[Value::Integer(9)]);
        assert_eq!(run(&q("min")).unwrap().values(), &[Value::Integer(3)]);
        assert_eq!(run(&q("avg")).unwrap().values(), &[Value::Real(6.0)]);
        assert_eq!(run(&q("sum")).unwrap().values(), &[Value::Integer(42)]);
        assert_eq!(run(&q("count")).unwrap().values(), &[Value::Integer(7)]);
    }

    #[test]
    fn rp_reports_include_cpu_time() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(fft(extract(a)))), 'bg', 0)
             and a=sp(gen_array(100000,5),'bg',1);")
        .unwrap();
        let b_report = &r.stats().rp_reports[1];
        assert!(
            b_report.node_cpu_busy > scsq_sim::SimDur::ZERO,
            "the fft-running node must show CPU time"
        );
    }

    #[test]
    fn udp_drops_elements_under_overload() {
        // Four saturating generators into one compute node: TCP's flow
        // control delivers everything; UDP overruns the I/O node and
        // loses elements — why SCSQ carries streams over TCP between
        // clusters.
        // Elements sized to one datagram each, so partial delivery is
        // observable.
        let q = "select extract(b) from bag of sp a, sp b, integer n
                 where b=sp(count(merge(a)), 'bg')
                 and a=spv((select gen_array(8000,500)
                            from integer i where i in iota(1,n)), 'be', urr('be'))
                 and n=4;";
        let tcp = run(q).unwrap();
        assert_eq!(tcp.values(), &[Value::Integer(2000)]);

        let udp = run_opts(
            q,
            &RunOptions {
                udp_inter_cluster: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let delivered = udp.values()[0].as_integer().expect("count");
        assert!(
            delivered < 2000,
            "overload must lose datagrams: delivered {delivered}/2000"
        );
        assert!(delivered > 0, "some elements must still arrive");
        let udp_bytes: u64 = udp
            .stats()
            .channels
            .iter()
            .filter(|c| c.carrier == "udp")
            .map(|c| c.bytes)
            .sum();
        assert!(
            udp_bytes < 2000 * 8_009,
            "delivered bytes reflect the loss: {udp_bytes}"
        );
    }

    #[test]
    fn udp_without_overload_delivers_everything() {
        // One modest stream: the I/O backlog never exceeds the drop
        // threshold, so UDP behaves like TCP.
        let q = "select extract(b) from sp a, sp b
                 where b=sp(count(extract(a)), 'bg')
                 and a=sp(gen_array(100000,10), 'be', 1);";
        let udp = run_opts(
            q,
            &RunOptions {
                udp_inter_cluster: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(udp.values(), &[Value::Integer(10)]);
    }

    #[test]
    fn take_truncates_a_stream() {
        // A stop condition in the query makes the stream finite (§2.2).
        let r = run("select extract(b) from sp a, sp b
             where b=sp(count(take(extract(a), 3)), 'bg', 0)
             and a=sp(gen_array(10000,9),'bg',1);")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(3)]);
    }

    #[test]
    fn nodes_feeds_allocation_sequences() {
        // nodes('bg') evaluates against the CNDB; using it as an
        // allocation sequence is equivalent to AllocSeq::Any.
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', nodes('bg'))
             and a=sp(gen_array(10000,2),'bg',1);")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(2)]);
        // b landed on node 0 — the first available in the CNDB order.
        assert!(r.bytes_into(NodeId::bg(0)) > 0);
    }

    #[test]
    fn rp_monitors_count_elements() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(10000,7),'bg',1);")
        .unwrap();
        let reports = &r.stats().rp_reports;
        assert_eq!(reports.len(), 3, "a, b, client");
        // a: generated 7, emitted 7.
        assert_eq!(reports[0].elements_in, 7);
        assert_eq!(reports[0].elements_out, 7);
        assert!(!reports[0].is_client);
        // b: received 7, emitted the single count.
        assert_eq!(reports[1].elements_in, 7);
        assert_eq!(reports[1].elements_out, 1);
        // client: received the count.
        assert!(reports[2].is_client);
        assert_eq!(reports[2].elements_in, 1);
    }

    #[test]
    fn bg_rps_start_at_the_poll_tick() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000,1),'bg',1);")
        .unwrap();
        // The generator cannot start before the bgCC's first poll (1 ms).
        assert!(r.finished() >= SimTime::from_millis(1));
    }

    #[test]
    fn metrics_bandwidth_matches_the_channel_report() {
        // Self-measurement: an observer SP computes the a→b bandwidth
        // from metric samples; it must equal delivered bytes / last
        // delivery straight from the channel's own statistics.
        let r = run("select extract(m) from sp a, sp b, sp m
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1)
             and m=sp(streamof(bandwidth(metrics(a))), 'bg', 2);")
        .unwrap();
        assert_eq!(r.values().len(), 1);
        let measured = match r.values()[0] {
            Value::Real(x) => x,
            ref v => panic!("expected a real bandwidth, got {v:?}"),
        };
        let mpi = r
            .stats()
            .channels
            .iter()
            .find(|c| c.carrier == "mpi")
            .expect("a→b channel");
        let external = mpi.bytes as f64 / mpi.last_delivery.since(SimTime::ZERO).as_secs_f64();
        let rel = (measured - external).abs() / external;
        assert!(rel < 1e-9, "measured {measured} vs external {external}");
    }

    #[test]
    fn metrics_counts_one_sample_per_delivering_buffer() {
        // 100 KB arrays over 1000-byte buffers: exactly one buffer per
        // array completes an element, so the observer sees 10 samples.
        let r = run("select extract(m) from sp a, sp b, sp m
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1)
             and m=sp(streamof(count(metrics(a))), 'bg', 2);")
        .unwrap();
        assert_eq!(r.values(), &[Value::Integer(10)]);
    }

    #[test]
    fn metrics_over_an_unobserved_sp_terminates_empty() {
        // `a` has no subscribers, so no channel matches the observer's
        // target: the metric stream is empty and ends immediately.
        let r = run("select extract(m) from sp a, sp m
             where a=sp(gen_array(1000,1),'bg',1)
             and m=sp(streamof(bandwidth(metrics(a))), 'bg', 2);")
        .unwrap();
        assert!(r.values().is_empty());
        assert!(r.finished() >= SimTime::ZERO);
    }

    #[test]
    fn observers_do_not_change_the_observed_channel() {
        // Adding a metrics SP must not perturb the a→b transfer itself:
        // same delivered bytes, same last-delivery time.
        let plain = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1);")
        .unwrap();
        let observed = run("select extract(m) from sp a, sp b, sp m
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1)
             and m=sp(streamof(bandwidth(metrics(a))), 'bg', 2);")
        .unwrap();
        let mpi = |r: &QueryResult| {
            let c = r
                .stats()
                .channels
                .iter()
                .find(|c| c.carrier == "mpi" && c.dst == NodeId::bg(0))
                .expect("a→b channel")
                .clone();
            (c.bytes, c.last_delivery)
        };
        assert_eq!(mpi(&plain), mpi(&observed));
    }

    #[test]
    fn stats_expose_kernel_and_channel_high_water_marks() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1);")
        .unwrap();
        assert!(r.stats().events_pending_hwm > 0);
        assert!(r.stats().events_pending_hwm <= r.stats().events);
        let mpi = r
            .stats()
            .channels
            .iter()
            .find(|c| c.carrier == "mpi")
            .expect("a→b channel");
        assert!(mpi.queue_peak_trains >= 1);
        assert!(mpi.buffers_sent > 0);
        assert_eq!(mpi.bytes_enqueued, mpi.bytes, "MPI loses nothing");
        assert_eq!(mpi.buffers_dropped, 0);
    }

    #[test]
    fn columnar_off_skips_decomposition_entirely() {
        // `--columnar off` must not even speculatively transpose a
        // delivered run into columns: the skip is observable through
        // the transpose counter, not just the admission counter.
        let q = "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(streamof(iota(1,100)),'bg',1);";
        let on = run(q).unwrap();
        assert!(on.stats().columnar_transposes > 0, "{:?}", on.stats());
        assert!(on.stats().columnar_batches > 0);
        let off = run_opts(
            q,
            &RunOptions {
                columnar: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(off.stats().columnar_transposes, 0);
        assert_eq!(off.stats().columnar_batches, 0);
        assert_eq!(on.values(), off.values());
        assert_eq!(on.finished(), off.finished());
    }

    #[test]
    fn relay_chains_forward_columns_across_sps() {
        // Two-SP pipeline: the middle SP's chain re-emits (arith +
        // filter), so the columnar pass relays survivor rows as shared
        // column handles to the downstream absorber — and the books
        // must match the per-element reference exactly.
        let q = "select extract(c) from sp a, sp b, sp c
             where c=sp(streamof(sum(extract(b))), 'bg', 0)
             and b=sp(filter(arith(extract(a), '*', 3), '>', 150), 'bg', 2)
             and a=sp(streamof(iota(1,100)),'bg',1);";
        let on = run(q).unwrap();
        // sum of 3i for i in 51..=100.
        assert_eq!(on.values(), &[Value::Integer(11325)]);
        assert!(on.stats().columnar_batches > 0, "{:?}", on.stats());
        let off = run_opts(
            q,
            &RunOptions {
                columnar: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(on.values(), off.values());
        assert_eq!(on.finished(), off.finished());
        let interp = run_opts(
            q,
            &RunOptions {
                fuse: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(on.values(), interp.values());
        assert_eq!(on.finished(), interp.finished());
    }

    #[test]
    fn type_error_inside_operator_aborts_the_query() {
        // sum() over synthetic arrays is a type error at run time.
        let err = run("select extract(b) from sp a, sp b
             where b=sp(streamof(sum(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000,2),'bg',1);")
        .unwrap_err();
        assert!(err.to_string().contains("expected number"), "{err}");
    }
}
