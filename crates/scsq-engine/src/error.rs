//! Engine error type.

use scsq_cluster::CndbError;
use scsq_ql::QlError;
use std::fmt;

/// Errors from query set-up or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Language-level error (parse, catalog, marshaling).
    Ql(QlError),
    /// Node selection failed (allocation sequence exhausted, unknown
    /// node) — the paper: "in case the stream contains no available
    /// node, the query will fail".
    Placement(CndbError),
    /// The binder could not resolve the query's variables.
    Bind(String),
    /// A value had the wrong type for where it was used.
    Type {
        /// What was required.
        expected: &'static str,
        /// What was found (type name).
        found: String,
        /// Where it happened.
        context: String,
    },
    /// Everything else that can go wrong while running.
    Runtime(String),
}

impl EngineError {
    /// Convenience constructor for bind errors.
    pub fn bind(msg: impl Into<String>) -> Self {
        EngineError::Bind(msg.into())
    }

    /// Convenience constructor for type errors.
    pub fn type_error(expected: &'static str, found: &impl TypeNamed, context: &str) -> Self {
        EngineError::Type {
            expected,
            found: found.type_name_owned(),
            context: context.to_string(),
        }
    }
}

/// Helper trait so [`EngineError::type_error`] can take any value that
/// knows its SCSQL type name.
pub trait TypeNamed {
    /// The SCSQL type name of the value.
    fn type_name_owned(&self) -> String;
}

impl TypeNamed for scsq_ql::Value {
    fn type_name_owned(&self) -> String {
        self.type_name().to_string()
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Ql(e) => write!(f, "{e}"),
            EngineError::Placement(e) => write!(f, "placement error: {e}"),
            EngineError::Bind(msg) => write!(f, "binder error: {msg}"),
            EngineError::Type {
                expected,
                found,
                context,
            } => write!(
                f,
                "type error in {context}: expected {expected}, found {found}"
            ),
            EngineError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QlError> for EngineError {
    fn from(e: QlError) -> Self {
        EngineError::Ql(e)
    }
}

impl From<CndbError> for EngineError {
    fn from(e: CndbError) -> Self {
        EngineError::Placement(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scsq_ql::Value;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::bind("unresolved variable `x`");
        assert_eq!(e.to_string(), "binder error: unresolved variable `x`");
        let e = EngineError::type_error("sp", &Value::Integer(3), "merge argument");
        assert_eq!(
            e.to_string(),
            "type error in merge argument: expected sp, found integer"
        );
    }

    #[test]
    fn conversions_wrap_sources() {
        let e: EngineError = QlError::Catalog("unknown function `zap`".into()).into();
        assert!(e.to_string().contains("zap"));
    }
}
