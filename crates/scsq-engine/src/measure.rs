//! Query results and the bandwidth bookkeeping behind the paper's
//! figures.
//!
//! §3: "The bandwidth is computed by measuring the total time to
//! communicate a finite stream of 3MB arrays between stream processes."
//! [`QueryResult`] therefore reports the query completion time along with
//! per-channel transfer statistics, from which the figure harnesses
//! compute exactly that quotient.

use scsq_cluster::{ClusterName, NodeId};
use scsq_ql::Value;
use scsq_sim::{SimDur, SimTime};

/// One stream channel's transfer summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelReport {
    /// Producing node.
    pub src: NodeId,
    /// Subscribing node.
    pub dst: NodeId,
    /// `"mpi"`, `"tcp"` or `"udp"`.
    pub carrier: String,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Payload bytes the producer enqueued (≥ `bytes`; the difference
    /// is in-flight loss, UDP only).
    pub bytes_enqueued: u64,
    /// Send buffers transmitted.
    pub buffers_sent: u64,
    /// Buffers (UDP datagrams) dropped in flight.
    pub buffers_dropped: u64,
    /// Elements lost to dropped datagrams.
    pub elements_lost: u64,
    /// High-water mark of the send queue, in trains (how far the
    /// producer ran ahead of the carrier).
    pub queue_peak_trains: u64,
    /// When the first buffer began marshaling.
    pub first_send: Option<SimTime>,
    /// When the last buffer finished de-marshaling.
    pub last_delivery: SimTime,
    /// Ingress→delivery latency distribution of the channel's elements,
    /// in simulated nanoseconds. Empty unless the channel was tracked
    /// (a `latency(p)` observer watched it, or
    /// `RunOptions::observe_latency` was set).
    pub latency: scsq_sim::LatencyHistogram,
}

/// One running process's execution monitor (§2.3: an RP is responsible
/// for "monitoring the execution of its SQEP").
#[derive(Debug, Clone, PartialEq)]
pub struct RpReport {
    /// Where the RP ran.
    pub node: NodeId,
    /// Elements that entered the RP's SQEP (received or self-generated).
    pub elements_in: u64,
    /// Elements the SQEP emitted downstream (or to the client log).
    pub elements_out: u64,
    /// CPU busy time accumulated on the RP's node over the query (for
    /// Linux nodes, shared by all co-located RPs).
    pub node_cpu_busy: SimDur,
    /// Whether this is the client manager's RP.
    pub is_client: bool,
}

/// Aggregate statistics of one query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// All stream channels of the query.
    pub channels: Vec<ChannelReport>,
    /// Per-RP execution monitors, in stream-process creation order (the
    /// client's RP last).
    pub rp_reports: Vec<RpReport>,
    /// Simulator events executed (including ones skipped analytically by
    /// the coalescer, which counts them as executed).
    pub events: u64,
    /// Peak concurrent pending-event population of the simulator queue —
    /// the event kernel's memory high-water mark for this query.
    pub events_pending_hwm: u64,
    /// Number of running processes (including the client's).
    pub rps: usize,
    /// What the train coalescer did (all zero when it was disabled).
    pub coalesce: scsq_sim::CoalesceStats,
    /// Whether stage chains ran as fused programs (`RunOptions::fuse`).
    pub fused: bool,
    /// Delivered batches absorbed or relayed by the columnar fast path
    /// (0 when `RunOptions::columnar` was off or nothing qualified).
    pub columnar_batches: u64,
    /// Value-run → column decompositions performed at delivery. Zero
    /// whenever `RunOptions::columnar` is off: the runtime must not
    /// even speculatively transpose when the fast path is disabled.
    pub columnar_transposes: u64,
    /// Service-jitter factors drawn from the environment's RNG stream
    /// over the run. Part of the determinism contract: any execution
    /// strategy (interpreted, fused, columnar, coalesced) must consume
    /// exactly as many draws, in the same order, or jittered replays
    /// diverge.
    pub jitter_draws: u64,
    /// The explain-analyze profile (`Some` iff `RunOptions::profile`).
    pub profile: Option<crate::profile::ProfileReport>,
}

/// The outcome of executing one continuous query to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    values: Vec<Value>,
    first_result: Option<SimTime>,
    finished: SimTime,
    stats: QueryStats,
}

impl QueryResult {
    /// Assembles a result (used by the runtime).
    pub fn new(
        values: Vec<Value>,
        first_result: Option<SimTime>,
        finished: SimTime,
        stats: QueryStats,
    ) -> QueryResult {
        QueryResult {
            values,
            first_result,
            finished,
            stats,
        }
    }

    /// When the first result value reached the client manager (`None`
    /// for empty result streams) — the query's result latency, as
    /// opposed to its completion time.
    pub fn first_result(&self) -> Option<SimTime> {
        self.first_result
    }

    /// The values delivered to the client manager, in arrival order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// When the query completed (client received end-of-stream).
    pub fn finished(&self) -> SimTime {
        self.finished
    }

    /// Total query execution time.
    pub fn total_time(&self) -> SimDur {
        self.finished.since(SimTime::ZERO)
    }

    /// The per-channel statistics.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Payload bytes that crossed from `src` cluster to `dst` cluster.
    pub fn bytes_between(&self, src: ClusterName, dst: ClusterName) -> u64 {
        self.stats
            .channels
            .iter()
            .filter(|c| c.src.cluster == src && c.dst.cluster == dst)
            .map(|c| c.bytes)
            .sum()
    }

    /// Mean bandwidth (bytes/s) of all traffic from `src` cluster to
    /// `dst` cluster over the whole query time — the paper's measurement
    /// methodology (the query time is dominated by the streaming phase).
    pub fn bandwidth_between(&self, src: ClusterName, dst: ClusterName) -> f64 {
        let bytes = self.bytes_between(src, dst);
        let t = self.total_time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            bytes as f64 / t
        }
    }

    /// Same as [`QueryResult::bandwidth_between`], in megabits/s (the
    /// unit of the paper's Figure 15 axis).
    pub fn mbps_between(&self, src: ClusterName, dst: ClusterName) -> f64 {
        self.bandwidth_between(src, dst) * 8.0 / 1e6
    }

    /// Payload bytes delivered *into* a specific node.
    pub fn bytes_into(&self, node: NodeId) -> u64 {
        self.stats
            .channels
            .iter()
            .filter(|c| c.dst == node)
            .map(|c| c.bytes)
            .sum()
    }

    /// Mean input bandwidth (bytes/s) at a node over the query time —
    /// the Figure 6/8 measurement ("total streaming input bandwidth at
    /// node c").
    pub fn bandwidth_into(&self, node: NodeId) -> f64 {
        let t = self.total_time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.bytes_into(node) as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: NodeId, dst: NodeId, bytes: u64) -> ChannelReport {
        ChannelReport {
            src,
            dst,
            carrier: "tcp".to_string(),
            bytes,
            bytes_enqueued: bytes,
            buffers_sent: 1,
            buffers_dropped: 0,
            elements_lost: 0,
            queue_peak_trains: 1,
            first_send: Some(SimTime::ZERO),
            last_delivery: SimTime::from_secs(1),
            latency: scsq_sim::LatencyHistogram::default(),
        }
    }

    fn sample() -> QueryResult {
        QueryResult::new(
            vec![Value::Integer(100)],
            Some(SimTime::from_secs(2)),
            SimTime::from_secs(2),
            QueryStats {
                channels: vec![
                    report(NodeId::be(0), NodeId::bg(0), 6_000_000),
                    report(NodeId::be(1), NodeId::bg(0), 2_000_000),
                    report(NodeId::bg(0), NodeId::fe(0), 100),
                ],
                rp_reports: vec![RpReport {
                    node: NodeId::bg(0),
                    elements_in: 3,
                    elements_out: 1,
                    node_cpu_busy: SimDur::from_millis(5),
                    is_client: false,
                }],
                events: 10,
                events_pending_hwm: 4,
                rps: 4,
                coalesce: scsq_sim::CoalesceStats::default(),
                fused: true,
                columnar_batches: 0,
                columnar_transposes: 0,
                jitter_draws: 0,
                profile: None,
            },
        )
    }

    #[test]
    fn cross_cluster_accounting() {
        let r = sample();
        assert_eq!(
            r.bytes_between(ClusterName::BackEnd, ClusterName::BlueGene),
            8_000_000
        );
        assert_eq!(
            r.bytes_between(ClusterName::BlueGene, ClusterName::FrontEnd),
            100
        );
        // 8 MB over 2 s = 4 MB/s = 32 Mbps.
        assert!(
            (r.bandwidth_between(ClusterName::BackEnd, ClusterName::BlueGene) - 4e6).abs() < 1.0
        );
        assert!((r.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn per_node_accounting() {
        let r = sample();
        assert_eq!(r.bytes_into(NodeId::bg(0)), 8_000_000);
        assert!((r.bandwidth_into(NodeId::bg(0)) - 4e6).abs() < 1.0);
        assert_eq!(r.bytes_into(NodeId::bg(5)), 0);
    }

    #[test]
    fn values_and_time_are_exposed() {
        let r = sample();
        assert_eq!(r.values(), &[Value::Integer(100)]);
        assert_eq!(r.total_time(), SimDur::from_secs(2));
        assert_eq!(r.stats().rps, 4);
    }
}
