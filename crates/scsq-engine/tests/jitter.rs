//! Service-time jitter and its interaction with the execution tiers.
//!
//! With `service_jitter > 0` every generator service time is scaled by
//! a fresh draw from the runtime's deterministic generator, and the
//! coalescing probes hash that generator's state as opaque shape — so
//! no two periods can digest equal and train-coalescing provably never
//! fires. The jittered schedule is still fully deterministic: same
//! options, same run, bit for bit.

use scsq_cluster::Environment;
use scsq_engine::{run_graph, QueryBuilder, QueryResult, RunOptions};
use scsq_ql::{parse_statement, Catalog};

fn run(src: &str, options: &RunOptions) -> QueryResult {
    let mut env = Environment::lofar();
    let catalog = Catalog::new();
    let stmt = parse_statement(src).expect("parses");
    let graph = QueryBuilder::new(&mut env, &catalog, options.placement, options)
        .build(&stmt, &[])
        .expect("builds");
    run_graph(env, &graph, options).expect("runs")
}

/// The Figure 6 point-to-point query — long periodic buffer trains,
/// i.e. the coalescer's best case when jitter is off.
fn query() -> &'static str {
    "select extract(b) from sp a, sp b, integer n \
     where b=sp(streamof(count(extract(a))), 'bg', 0) \
     and a=sp(gen_array(3000000,5),'bg',1) and n=1;"
}

#[test]
fn jitter_defeats_coalescing() {
    // A small MPI buffer gives each array thousands of identical
    // periods — the coalescer's best case when jitter is off.
    let jittered = RunOptions {
        service_jitter: 0.05,
        coalesce: true,
        mpi_buffer: 1_000,
        ..RunOptions::default()
    };
    let result = run(query(), &jittered);
    let stats = result.stats();
    assert_eq!(
        stats.coalesce.jumps, 0,
        "no train may form under service jitter"
    );
    assert_eq!(stats.coalesce.periods_skipped, 0);

    // Sanity: the same workload without jitter does coalesce.
    let smooth = RunOptions {
        coalesce: true,
        mpi_buffer: 1_000,
        ..RunOptions::default()
    };
    assert!(
        run(query(), &smooth).stats().coalesce.jumps > 0,
        "the workload must be coalescing-friendly when jitter is off"
    );
}

#[test]
fn jittered_runs_are_identical_with_and_without_coalescing() {
    let on = RunOptions {
        service_jitter: 0.05,
        coalesce: true,
        ..RunOptions::default()
    };
    let off = RunOptions {
        service_jitter: 0.05,
        coalesce: false,
        ..RunOptions::default()
    };
    let a = run(query(), &on);
    let b = run(query(), &off);
    assert_eq!(a.values(), b.values());
    assert_eq!(a.finished(), b.finished());
    assert_eq!(a.stats().events, b.stats().events);
    assert_eq!(a.stats().channels, b.stats().channels);
}

#[test]
fn jittered_schedule_differs_from_smooth_but_is_deterministic() {
    let jittered = RunOptions {
        service_jitter: 0.05,
        ..RunOptions::default()
    };
    let smooth = RunOptions::default();
    let a = run(query(), &jittered);
    let b = run(query(), &jittered);
    let c = run(query(), &smooth);
    assert_eq!(a.finished(), b.finished(), "jitter is deterministic");
    assert_ne!(
        a.finished(),
        c.finished(),
        "jitter must actually perturb the schedule"
    );
}
