//! Property-based tests for the binder: declarative `where` clauses are
//! order-insensitive, and equivalent formulations produce identical
//! executions.

use proptest::prelude::*;
use scsq_cluster::Environment;
use scsq_engine::{run_graph, PlacementPolicy, QueryBuilder, QueryResult, RunOptions};
use scsq_ql::{parse_statement, Catalog, Value};

fn run(src: &str) -> QueryResult {
    let mut env = Environment::lofar();
    let catalog = Catalog::new();
    let options = RunOptions::default();
    let stmt = parse_statement(src).expect("parses");
    let graph = QueryBuilder::new(&mut env, &catalog, PlacementPolicy::Naive, &options)
        .build(&stmt, &[])
        .expect("builds");
    run_graph(env, &graph, &options).expect("runs")
}

/// The p2p query's three predicates in an arbitrary order.
fn p2p_with_order(order: &[usize]) -> String {
    let preds = [
        "b=sp(streamof(count(extract(a))), 'bg', 0)",
        "a=sp(gen_array(100000,7),'bg',1)",
        "n=7",
    ];
    let joined: Vec<&str> = order.iter().map(|&i| preds[i]).collect();
    format!(
        "select extract(b) from sp a, sp b, integer n where {};",
        joined.join(" and ")
    )
}

proptest! {
    /// `where` conjuncts bind by dependency, not text order: every
    /// permutation yields the same values and the same completion time.
    #[test]
    fn predicate_order_does_not_matter(perm in Just(()).prop_perturb(|(), mut rng| {
        let mut idx = vec![0usize, 1, 2];
        // Fisher-Yates with proptest's rng.
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        idx
    })) {
        let reference = run(&p2p_with_order(&[0, 1, 2]));
        let permuted = run(&p2p_with_order(&perm));
        prop_assert_eq!(reference.values(), permuted.values());
        prop_assert_eq!(reference.finished(), permuted.finished());
    }

    /// Literal inlining equals variable indirection: writing `n=K` and
    /// using `n` is identical to writing `K` in place.
    #[test]
    fn variables_are_referentially_transparent(k in 1i64..12) {
        let with_var = run(&format!(
            "select extract(b) from bag of sp a, sp b, integer n
             where b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(50000,4)
                        from integer i where i in iota(1,n)), 'be', 1)
             and n={k};"
        ));
        let inlined = run(&format!(
            "select extract(b) from bag of sp a, sp b
             where b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(50000,4)
                        from integer i where i in iota(1,{k})), 'be', 1);"
        ));
        prop_assert_eq!(with_var.values(), inlined.values());
        prop_assert_eq!(with_var.finished(), inlined.finished());
        prop_assert_eq!(with_var.values(), &[Value::Integer(k * 4)]);
    }

    /// `streamof` is a no-op on stream contents wherever it is inserted.
    #[test]
    fn streamof_is_transparent(wrap in any::<bool>()) {
        let inner = if wrap {
            "streamof(count(extract(a)))"
        } else {
            "count(extract(a))"
        };
        let r = run(&format!(
            "select extract(b) from sp a, sp b
             where b=sp({inner}, 'bg', 0)
             and a=sp(gen_array(10000,5),'bg',1);"
        ));
        prop_assert_eq!(r.values(), &[Value::Integer(5)]);
    }
}
