//! Property-based equivalence of the columnar batch fast path.
//!
//! [`FusedChain::process_batch_columnar`] absorbs a whole delivered
//! batch with one dispatch per column; its contract is that the result
//! is byte-identical to feeding the same elements one at a time — the
//! accumulators land in the same state (same wrapping integer sums,
//! same sequential float rounding, same strict first-best winners), the
//! end-of-stream flush emits the same values, and error *messages*
//! match, because the runtime surfaces them to the client verbatim.
//!
//! The driver below mirrors `World::deliver`: try the columnar pass,
//! and fall back to the per-element fused path when it declines
//! (`Ok(false)`), exactly as the engine does.

use proptest::prelude::*;
use scsq_engine::ops::{AggKind, MapFunc, Pipeline, Stage, StageChain};
use scsq_engine::{ArithOp, CmpOp, FusedChain, FusedProgram};
use scsq_ql::{Batch, Value};

fn agg() -> impl Strategy<Value = AggKind> {
    prop_oneof![
        Just(AggKind::Count),
        Just(AggKind::Sum),
        Just(AggKind::Max),
        Just(AggKind::Min),
        Just(AggKind::Avg),
    ]
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul)]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

/// Constants for arith/cmp/filter stages. String constants are legal
/// for comparisons against string columns, make arithmetic fail (an
/// error-path probe), and force the columnar admission walk to decline
/// numeric columns compared against strings.
fn rhs() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-10i64..10).prop_map(Value::Integer),
        (-10.0f64..10.0).prop_map(Value::Real),
        Just(Value::Str("m".to_string())),
    ]
}

/// Strategy over stages, dominated by the vectorizable set so most
/// generated chains qualify for the columnar pass, with one map stage
/// variant to force the per-element fallback branch.
fn stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        agg().prop_map(Stage::Agg),
        Just(Stage::StreamOf),
        (0u64..8).prop_map(|limit| Stage::Take { limit }),
        Just(Stage::Bandwidth),
        Just(Stage::Map(MapFunc::Power)),
        (arith_op(), rhs()).prop_map(|(op, rhs)| Stage::Arith { op, rhs }),
        (cmp_op(), rhs()).prop_map(|(op, rhs)| Stage::Cmp { op, rhs }),
        (cmp_op(), rhs()).prop_map(|(op, rhs)| Stage::Filter { op, rhs }),
    ]
}

/// A metric sample bag; negative timestamps and byte counts are
/// generated on purpose so the bandwidth error path is exercised.
fn metric() -> impl Strategy<Value = Value> {
    (-3i64..3, -50i64..500, -10i64..100).prop_map(|(c, t, b)| {
        Value::Bag(vec![
            Value::Integer(c),
            Value::Integer(t),
            Value::Integer(b),
        ])
    })
}

/// Any value the engine can deliver, including the kinds that make
/// aggregates fail.
fn mixed_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100i64..100).prop_map(Value::Integer),
        (-100.0f64..100.0).prop_map(Value::Real),
        any::<bool>().prop_map(Value::Bool),
        (8u64..256).prop_map(Value::synthetic_array),
        Just(Value::Str("x".to_string())),
        metric(),
    ]
}

/// Short strings straddling the `rhs()` comparison constant `"m"` in
/// both order and length, so string cmp/filter kernels see every
/// outcome; same-length runs additionally qualify for bulk cost
/// accounting (uniform marshaled stride).
fn word() -> impl Strategy<Value = Value> {
    prop_oneof![Just("a"), Just("m"), Just("mm"), Just("z")].prop_map(|s| Value::Str(s.to_string()))
}

/// A two-column record (non-metric multi-column shape): decomposes into
/// parallel `c0`/`c1` columns at admission.
fn record() -> impl Strategy<Value = Value> {
    ((-100i64..100), (-10.0f64..10.0))
        .prop_map(|(a, b)| Value::Bag(vec![Value::Integer(a), Value::Real(b)]))
}

/// One delivered batch: homogeneous integer / float / string / metric /
/// record runs (the shapes the columnar pass accepts) plus mixed runs
/// it must decline. One variant spans the 64-row validity-word boundary
/// so bitmap edge cases are continuously exercised.
fn batch_values() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        proptest::collection::vec((-100i64..100).prop_map(Value::Integer), 0..10),
        proptest::collection::vec((-100i64..100).prop_map(Value::Integer), 60..70),
        proptest::collection::vec((-100.0f64..100.0).prop_map(Value::Real), 0..10),
        proptest::collection::vec(word(), 0..10),
        proptest::collection::vec(metric(), 0..10),
        proptest::collection::vec(record(), 0..10),
        proptest::collection::vec(mixed_value(), 0..10),
    ]
}

/// Feeds the same batches through the interpreted chain (per element)
/// and the fused chain driven the way `World::deliver` drives it
/// (columnar pass first, per-element fallback on decline), comparing
/// outputs, errors, and the end-of-stream flush.
fn assert_equivalent(stages: Vec<Stage>, batches: Vec<Vec<Value>>) -> Result<(), TestCaseError> {
    let pipeline = Pipeline {
        input: scsq_engine::InputKind::Const { values: Vec::new() },
        stages,
    };
    let mut interpreted = StageChain::new(&pipeline);
    let mut fused = FusedChain::new(&FusedProgram::compile(&pipeline));

    for values in batches {
        let batch = Batch::new(values.clone());

        // Reference: the interpreter, one element at a time.
        let mut ref_out = Vec::new();
        let mut ref_err = None;
        for v in &values {
            match interpreted.process(v.clone(), None) {
                Ok(mut o) => ref_out.append(&mut o),
                Err(e) => {
                    ref_err = Some(e);
                    break;
                }
            }
        }

        // Candidate: the deliver-path driver.
        match fused.process_batch_columnar(&batch) {
            Ok(true) => {
                // The columnar pass only fires for absorber-terminated
                // chains, which emit nothing per element and never fail
                // on the shapes the pre-check admits.
                prop_assert!(ref_err.is_none(), "interpreter failed, columnar did not");
                prop_assert!(ref_out.is_empty(), "absorbed batch must emit nothing");
            }
            Ok(false) => {
                let mut out = Vec::new();
                let mut err = None;
                for v in &values {
                    if let Err(e) = fused.process_into(v.clone(), None, &mut out) {
                        err = Some(e);
                        break;
                    }
                }
                match (ref_err, err) {
                    (None, None) => prop_assert_eq!(&ref_out, &out, "per-element outputs"),
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.to_string(), b.to_string(), "error messages");
                        return Ok(()); // the runtime stops at the first error
                    }
                    (a, b) => {
                        return Err(TestCaseError::fail(format!(
                            "one path failed, the other did not: {a:?} vs {b:?}"
                        )))
                    }
                }
            }
            Err(e) => {
                let Some(a) = ref_err else {
                    return Err(TestCaseError::fail(format!(
                        "columnar pass failed, interpreter did not: {e}"
                    )));
                };
                prop_assert_eq!(a.to_string(), e.to_string(), "error messages");
                return Ok(());
            }
        }
    }

    match (interpreted.finish(), fused.finish()) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "end-of-stream flush"),
        (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string(), "flush errors"),
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "flush disagreement: {a:?} vs {b:?}"
            )))
        }
    }
    Ok(())
}

/// Stages legal in a relay chain (re-emitting: no absorber).
fn relay_extra() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::StreamOf),
        (0u64..80).prop_map(|limit| Stage::Take { limit }),
        relay_transform(),
    ]
}

/// A transform stage with constants that sometimes eliminate every row
/// (an empty selection) and sometimes keep them all.
fn relay_rhs() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-10i64..10).prop_map(Value::Integer),
        Just(Value::Integer(1000)),
        (-10.0f64..10.0).prop_map(Value::Real),
    ]
}

fn relay_transform() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (arith_op(), relay_rhs()).prop_map(|(op, rhs)| Stage::Arith { op, rhs }),
        (cmp_op(), relay_rhs()).prop_map(|(op, rhs)| Stage::Cmp { op, rhs }),
        (cmp_op(), relay_rhs()).prop_map(|(op, rhs)| Stage::Filter { op, rhs }),
    ]
}

/// One relayable batch: numeric runs, including lengths straddling the
/// 64-row validity word.
fn relay_batch() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        proptest::collection::vec((-100i64..100).prop_map(Value::Integer), 0..10),
        proptest::collection::vec((-100i64..100).prop_map(Value::Integer), 60..70),
        proptest::collection::vec((-100.0f64..100.0).prop_map(Value::Real), 0..10),
    ]
}

/// Drives the relay admission path the way `World::deliver` drives it:
/// relay when admitted (materializing the forwarded column rows for
/// comparison), per-element fused fallback when declined; the
/// interpreter is the byte-identity reference throughout.
fn assert_relay_equivalent(
    stages: Vec<Stage>,
    batches: Vec<Vec<Value>>,
) -> Result<(), TestCaseError> {
    let pipeline = Pipeline {
        input: scsq_engine::InputKind::Const { values: Vec::new() },
        stages,
    };
    let mut interpreted = StageChain::new(&pipeline);
    let mut fused = FusedChain::new(&FusedProgram::compile(&pipeline));

    for values in batches {
        let mut ref_out = Vec::new();
        let mut ref_err = None;
        for v in &values {
            match interpreted.process(v.clone(), None) {
                Ok(mut o) => ref_out.append(&mut o),
                Err(e) => {
                    ref_err = Some(e);
                    break;
                }
            }
        }

        let cols = scsq_ql::ColumnarBatch::from_values(&values);
        if let Some(admit) = fused.relay_admit_cols(&cols) {
            let (out, sel) = fused.process_relayed(admit);
            prop_assert!(
                ref_err.is_none(),
                "interpreter failed, the relay pass did not"
            );
            if let Some(s) = &sel {
                prop_assert_eq!(s.rows().len(), out.rows(), "selection covers the output");
            }
            let got: Vec<Value> = (0..out.rows())
                .map(|j| out.value_at(j).expect("relay outputs are valid"))
                .collect();
            prop_assert_eq!(&ref_out, &got, "relayed rows");
        } else {
            let mut out = Vec::new();
            let mut err = None;
            for v in &values {
                if let Err(e) = fused.process_into(v.clone(), None, &mut out) {
                    err = Some(e);
                    break;
                }
            }
            match (ref_err, err) {
                (None, None) => prop_assert_eq!(&ref_out, &out, "per-element outputs"),
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string(), "error messages");
                    return Ok(());
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "one path failed, the other did not: {a:?} vs {b:?}"
                    )))
                }
            }
        }
    }

    match (interpreted.finish(), fused.finish()) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "end-of-stream flush"),
        (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string(), "flush errors"),
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "flush disagreement: {a:?} vs {b:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The columnar batch pass (with its per-element fallback) agrees
    /// with the interpreted reference on outputs, accumulator state (via
    /// the flush), and errors, over randomized chains and batch streams.
    #[test]
    fn columnar_equals_interpreted(
        stages in proptest::collection::vec(stage(), 1..4),
        batches in proptest::collection::vec(batch_values(), 0..5),
    ) {
        assert_equivalent(stages, batches)?;
    }

    /// Relay chains (transforms + take, no absorber) produce — via
    /// column kernels, selection vectors, and one survivor gather —
    /// exactly the interpreter's per-element outputs, including batch
    /// lengths straddling the 64-row validity word and filters that
    /// leave an empty selection.
    #[test]
    fn relayed_equals_interpreted(
        before in proptest::collection::vec(relay_extra(), 0..2),
        transform in relay_transform(),
        after in proptest::collection::vec(relay_extra(), 0..2),
        batches in proptest::collection::vec(relay_batch(), 0..4),
    ) {
        let mut stages = before;
        stages.push(transform);
        stages.extend(after);
        assert_relay_equivalent(stages, batches)?;
    }
}

/// The columnar pass fires for an absorber-terminated chain and leaves
/// the same accumulator state as per-element execution.
#[test]
fn columnar_pass_absorbs_metric_batches() {
    let pipeline = Pipeline {
        input: scsq_engine::InputKind::Const { values: Vec::new() },
        stages: vec![Stage::StreamOf, Stage::Bandwidth],
    };
    let sample = |t: i64, b: i64| {
        Value::Bag(vec![
            Value::Integer(0),
            Value::Integer(t),
            Value::Integer(b),
        ])
    };
    let values = vec![sample(100, 10), sample(250, 20), sample(900, 30)];

    let mut fused = FusedChain::new(&FusedProgram::compile(&pipeline));
    assert!(fused
        .process_batch_columnar(&Batch::new(values.clone()))
        .unwrap());

    let mut interpreted = StageChain::new(&pipeline);
    for v in values {
        interpreted.process(v, None).unwrap();
    }
    assert_eq!(fused.finish().unwrap(), interpreted.finish().unwrap());
}

/// A chain with no absorbing aggregate declines the columnar pass: a
/// relay would have to reconstruct every leftover tuple, which costs
/// more than the per-element path it replaces.
#[test]
fn relay_chains_decline_the_columnar_pass() {
    for stages in [
        vec![Stage::StreamOf],
        vec![Stage::Take { limit: 4 }],
        vec![Stage::StreamOf, Stage::Take { limit: 4 }],
    ] {
        let pipeline = Pipeline {
            input: scsq_engine::InputKind::Const { values: Vec::new() },
            stages,
        };
        let mut fused = FusedChain::new(&FusedProgram::compile(&pipeline));
        let batch = Batch::new((0..6).map(Value::Integer).collect());
        assert!(!fused.process_batch_columnar(&batch).unwrap());
    }
}
