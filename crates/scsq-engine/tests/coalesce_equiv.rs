//! Property-based equivalence of the train-coalescing fast path.
//!
//! The coalescer's contract is *bit-identical* execution: for any
//! query, topology, message size, and buffer size, running with
//! `coalesce: true` must produce exactly the same result stream,
//! timestamps, per-channel byte accounting, and event count as the
//! per-event reference — the only permitted difference is the
//! coalescer's own activity counters.

use proptest::prelude::*;
use scsq_cluster::Environment;
use scsq_engine::{run_graph, PlacementPolicy, QueryBuilder, QueryResult, RunOptions};
use scsq_ql::{parse_statement, Catalog};

fn run(src: &str, options: &RunOptions) -> QueryResult {
    let mut env = Environment::lofar();
    let catalog = Catalog::new();
    let stmt = parse_statement(src).expect("parses");
    let graph = QueryBuilder::new(&mut env, &catalog, options.placement, options)
        .build(&stmt, &[])
        .expect("builds");
    run_graph(env, &graph, options).expect("runs")
}

/// Asserts both modes agree on everything except the coalescer's own
/// activity counters.
fn assert_equivalent(src: &str, options: &RunOptions) -> Result<(), TestCaseError> {
    let reference = run(
        src,
        &RunOptions {
            coalesce: false,
            ..options.clone()
        },
    );
    let coalesced = run(
        src,
        &RunOptions {
            coalesce: true,
            ..options.clone()
        },
    );
    prop_assert_eq!(reference.values(), coalesced.values(), "result stream");
    prop_assert_eq!(
        reference.first_result(),
        coalesced.first_result(),
        "first-result latency"
    );
    prop_assert_eq!(reference.finished(), coalesced.finished(), "completion");
    prop_assert_eq!(
        &reference.stats().channels,
        &coalesced.stats().channels,
        "channel accounting"
    );
    prop_assert_eq!(
        &reference.stats().rp_reports,
        &coalesced.stats().rp_reports,
        "rp monitors"
    );
    prop_assert_eq!(
        reference.stats().events,
        coalesced.stats().events,
        "event count (skipped periods count as executed)"
    );
    Ok(())
}

/// The three stream topologies of the paper's evaluation, at a random
/// message size and count.
fn query(topology: usize, bytes: u64, arrays: u64) -> String {
    match topology {
        // Figure 6: intra-BlueGene point-to-point.
        0 => format!(
            "select extract(b) from sp a, sp b, integer n \
             where b=sp(streamof(count(extract(a))), 'bg', 0) \
             and a=sp(gen_array({bytes},{arrays}),'bg',1) and n=1;"
        ),
        // Figure 8: two senders merged into one receiver (switch
        // penalties at the receiving co-processor).
        1 => format!(
            "select extract(c) from sp a, sp b, sp c \
             where c=sp(count(merge({{a,b}})), 'bg', 0) \
             and a=sp(gen_array({bytes},{arrays}),'bg',1) \
             and b=sp(gen_array({bytes},{arrays}),'bg',2);"
        ),
        // Figure 15 Q5-style: back-end generators streaming into
        // pset-spread BlueGene receivers over TCP.
        _ => format!(
            "select extract(c) from bag of sp a, bag of sp b, sp c, integer n \
             where c=sp(streamof(sum(merge(b))), 'bg') \
             and b=spv((select streamof(count(extract(p))) \
                        from sp p where p in a), 'bg', psetrr()) \
             and a=spv((select gen_array({bytes},{arrays}) \
                        from integer i where i in iota(1,n)), 'be', 1) \
             and n=2;"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coalesced and per-event execution are bit-identical across
    /// randomized topologies, message sizes, and buffer sweeps.
    #[test]
    fn coalesced_equals_per_event(
        topology in 0usize..3,
        bytes in prop_oneof![Just(10_000u64), Just(100_000), Just(1_000_000)],
        arrays in 1u64..6,
        buffer in prop_oneof![
            Just(100u64), Just(1_000), Just(5_000), Just(100_000)
        ],
        double in any::<bool>(),
        aware in any::<bool>(),
    ) {
        let options = RunOptions {
            mpi_buffer: buffer,
            mpi_double: double,
            placement: if aware {
                PlacementPolicy::TopologyAware
            } else {
                PlacementPolicy::Naive
            },
            ..RunOptions::default()
        };
        assert_equivalent(&query(topology, bytes, arrays), &options)?;
    }

    /// The fast path stays exact under UDP inter-cluster carriers,
    /// where datagram-drop decisions depend on I/O-node backlog — the
    /// probe must forbid jumps across the drop threshold.
    #[test]
    fn coalesced_equals_per_event_over_udp(
        bytes in prop_oneof![Just(100_000u64), Just(1_000_000)],
        arrays in 1u64..5,
    ) {
        let options = RunOptions {
            udp_inter_cluster: true,
            ..RunOptions::default()
        };
        assert_equivalent(&query(2, bytes, arrays), &options)?;
    }
}
