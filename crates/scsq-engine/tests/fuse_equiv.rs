//! Property-based equivalence of the fused stage programs.
//!
//! `FusedChain` lowers a pipeline's stage chain into a jump table of
//! direct step functions at prepare time; its contract is that for any
//! stage chain and any input stream it produces exactly the same
//! outputs, end-of-stream flush, and errors as the interpreted
//! [`StageChain`] reference — including error *messages*, because the
//! runtime surfaces them to the client verbatim.

use proptest::prelude::*;
use scsq_engine::ops::{AggKind, MapFunc, Pipeline, Stage, StageChain};
use scsq_engine::window::WindowSpec;
use scsq_engine::{FusedChain, FusedProgram};
use scsq_ql::{SpHandle, Value};

/// Strategy over single stages (radix combine is covered by its own
/// deterministic test below: it needs paired producers, not a random
/// `from` stream).
fn stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        prop_oneof![
            Just(MapFunc::Odd),
            Just(MapFunc::Even),
            Just(MapFunc::Fft),
            Just(MapFunc::Power),
        ]
        .prop_map(Stage::Map),
        agg().prop_map(Stage::Agg),
        Just(Stage::StreamOf),
        (1usize..5, 1usize..3, agg()).prop_map(|(size, slide, agg)| {
            Stage::Window(WindowSpec::new(size, slide, agg).expect("valid window"))
        }),
        (0u64..6).prop_map(|limit| Stage::Take { limit }),
    ]
}

fn agg() -> impl Strategy<Value = AggKind> {
    prop_oneof![
        Just(AggKind::Count),
        Just(AggKind::Sum),
        Just(AggKind::Max),
        Just(AggKind::Min),
        Just(AggKind::Avg),
    ]
}

/// Strategy over input values: the numeric kinds every stage accepts
/// plus arrays (maps want them) and the kinds that make elementwise
/// functions fail, so the error paths are exercised too.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100i64..100).prop_map(Value::Integer),
        (-100.0f64..100.0).prop_map(Value::Real),
        (8u64..4096).prop_map(Value::synthetic_array),
        proptest::collection::vec(-10.0f64..10.0, 1..9)
            .prop_map(|v| Value::Array(scsq_ql::ArrayData::Real(v))),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Str("x".to_string())),
    ]
}

/// Feeds the same stream through the interpreted chain and the fused
/// program, comparing per-element outputs, the first error, and the
/// end-of-stream flush.
fn assert_equivalent(stages: Vec<Stage>, inputs: Vec<Value>) -> Result<(), TestCaseError> {
    let pipeline = Pipeline {
        input: scsq_engine::InputKind::Const { values: Vec::new() },
        stages,
    };
    let mut interpreted = StageChain::new(&pipeline);
    let mut fused = FusedChain::new(&FusedProgram::compile(&pipeline));

    for value in inputs {
        let reference = interpreted.process(value.clone(), None);
        let mut out = Vec::new();
        let lowered = fused.process_into(value, None, &mut out).map(|()| out);
        match (reference, lowered) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "per-element outputs"),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.to_string(), b.to_string(), "error messages");
                return Ok(()); // the runtime stops at the first error
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "one chain failed, the other did not: {a:?} vs {b:?}"
                )))
            }
        }
    }

    let flush_ref = interpreted.finish();
    let flush_fused = fused.finish();
    match (flush_ref, flush_fused) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "end-of-stream flush"),
        (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string(), "flush errors"),
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "flush disagreement: {a:?} vs {b:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fused and interpreted execution agree on outputs, flushes, and
    /// errors over randomized stage chains and value streams.
    #[test]
    fn fused_equals_interpreted(
        stages in proptest::collection::vec(stage(), 0..5),
        inputs in proptest::collection::vec(value(), 0..12),
    ) {
        assert_equivalent(stages, inputs)?;
    }
}

/// Radix combine pairs elements from two named producers; drive both
/// chains with an interleaved two-producer stream and an out-of-order
/// tail that must fail identically.
#[test]
fn radix_combine_matches_interpreted() {
    let first = SpHandle(1);
    let second = SpHandle(2);
    let pipeline = Pipeline {
        input: scsq_engine::InputKind::Receive {
            producers: vec![first, second],
        },
        stages: vec![Stage::RadixCombine { first, second }],
    };
    let mut interpreted = StageChain::new(&pipeline);
    let mut fused = FusedChain::new(&FusedProgram::compile(&pipeline));

    let half = |n: u64| Value::Array(scsq_ql::ArrayData::Complex(vec![(n as f64, 0.0); 4]));
    for i in 0..6u64 {
        let from = if i % 2 == 0 { first } else { second };
        let reference = interpreted.process(half(i), Some(from)).unwrap();
        let mut out = Vec::new();
        fused.process_into(half(i), Some(from), &mut out).unwrap();
        assert_eq!(reference, out, "paired radix outputs");
    }

    // An element from an unknown producer errors identically.
    let stray = SpHandle(99);
    let a = interpreted.process(half(0), Some(stray)).unwrap_err();
    let mut out = Vec::new();
    let b = fused
        .process_into(half(0), Some(stray), &mut out)
        .unwrap_err();
    assert_eq!(a.to_string(), b.to_string());
}
