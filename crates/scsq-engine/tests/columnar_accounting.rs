//! The columnar bulk-accounting contract, end to end.
//!
//! The columnar fast path replaces N per-element `compute` charges with
//! one `compute_bulk` per delivered batch. Its contract is stronger
//! than "same answer": on a jittered run the bulk charge must draw
//! exactly as many RNG factors, in the same order, and schedule the
//! same total service time as the per-element path — otherwise every
//! event after the first absorbed batch lands at a different simulated
//! instant and jittered replays diverge. These tests run the same
//! filter-heavy pipeline through all three execution tiers and compare
//! the books, plus a proptest over jitter amplitudes and stage
//! constants.

use proptest::prelude::*;
use scsq_cluster::Environment;
use scsq_engine::{run_graph, QueryBuilder, QueryResult, RunOptions};
use scsq_ql::{parse_statement, Catalog};

fn run(src: &str, options: &RunOptions) -> QueryResult {
    let mut env = Environment::lofar();
    let catalog = Catalog::new();
    let stmt = parse_statement(src).expect("parses");
    let graph = QueryBuilder::new(&mut env, &catalog, options.placement, options)
        .build(&stmt, &[])
        .expect("builds");
    run_graph(env, &graph, options).expect("runs")
}

/// A filter-heavy pipeline over a dense integer stream: arithmetic,
/// a selection-producing filter, a comparison and a terminal count —
/// every cost-bearing stage kind the columnar path bulk-charges.
fn filter_query(n: u64, mul: i64, threshold: i64) -> String {
    format!(
        "select extract(b) from sp a, sp b \
         where b=sp(streamof(count(cmp(filter(arith(extract(a), '*', {mul}), '>', {threshold}), '<', {cap}))), 'bg', 0) \
         and a=sp(streamof(iota(1,{n})),'bg',1);",
        cap = mul * n as i64 + 1,
    )
}

fn options(jitter: f64, fuse: bool, columnar: bool) -> RunOptions {
    RunOptions {
        service_jitter: jitter,
        coalesce: false,
        mpi_buffer: 2_000,
        fuse,
        columnar,
        ..RunOptions::default()
    }
}

/// Asserts the three tiers agree on the answer, the completion time
/// and the RNG draw count, and returns the columnar run's batch count.
fn assert_books_match(src: &str, jitter: f64) -> u64 {
    let interpreted = run(src, &options(jitter, false, false));
    let scalar = run(src, &options(jitter, true, false));
    let columnar = run(src, &options(jitter, true, true));

    assert_eq!(interpreted.values(), scalar.values(), "scalar answer");
    assert_eq!(scalar.values(), columnar.values(), "columnar answer");
    assert_eq!(
        interpreted.finished(),
        scalar.finished(),
        "scalar completion time"
    );
    assert_eq!(
        scalar.finished(),
        columnar.finished(),
        "columnar completion time"
    );
    assert_eq!(
        interpreted.stats().jitter_draws,
        scalar.stats().jitter_draws,
        "scalar RNG stream position"
    );
    assert_eq!(
        scalar.stats().jitter_draws,
        columnar.stats().jitter_draws,
        "columnar RNG stream position"
    );

    assert_eq!(interpreted.stats().columnar_batches, 0);
    assert_eq!(scalar.stats().columnar_batches, 0);
    // `--columnar off` must not even transpose: the decomposition is
    // guarded, not merely the admission.
    assert_eq!(interpreted.stats().columnar_transposes, 0);
    assert_eq!(scalar.stats().columnar_transposes, 0);
    columnar.stats().columnar_batches
}

/// A two-SP relay pipeline: the upstream SP's chain re-emits (arith +
/// filter feeding a downstream fold), so the columnar pass forwards
/// survivor rows as shared column handles across the stream channel —
/// the cross-SP column relay whose books must balance.
fn relay_query(n: u64, mul: i64, threshold: i64) -> String {
    format!(
        "select extract(c) from sp a, sp b, sp c \
         where c=sp(streamof(sum(extract(b))), 'bg', 0) \
         and b=sp(filter(arith(extract(a), '*', {mul}), '>', {threshold}), 'bg', 2) \
         and a=sp(streamof(iota(1,{n})),'bg',1);"
    )
}

/// The headline check: a jittered filter-heavy pipeline takes the
/// columnar path (batches are actually absorbed) with byte-identical
/// values, completion time and RNG stream position across all tiers.
#[test]
fn filter_pipeline_books_balance_across_tiers() {
    let src = filter_query(4_000, 3, 6_000);
    let absorbed = assert_books_match(&src, 0.05);
    assert!(
        absorbed > 0,
        "the filter pipeline must actually ride the columnar path"
    );
}

/// Jitter off: the bulk charge takes its closed-form fast path (no
/// RNG at all); the books must still balance.
#[test]
fn books_balance_without_jitter() {
    let src = filter_query(4_000, 3, 6_000);
    let absorbed = assert_books_match(&src, 0.0);
    assert!(absorbed > 0);
    let r = run(&src, &options(0.0, true, true));
    assert_eq!(r.stats().jitter_draws, 0, "no draws when jitter is off");
}

/// A costless absorber chain (`count` alone has no cost-bearing
/// stages) bulk-charges zero bytes, which must consume zero draws —
/// the scalar path's `compute(0)` early-out, mirrored in bulk.
#[test]
fn costless_chains_draw_nothing_at_the_receiver() {
    let src = "select extract(b) from sp a, sp b \
               where b=sp(streamof(count(extract(a))), 'bg', 0) \
               and a=sp(streamof(iota(1,3000)),'bg',1);";
    let absorbed = assert_books_match(src, 0.05);
    assert!(absorbed > 0);
}

/// The relay headline: a jittered two-SP relay pipeline rides the
/// columnar path end to end (relayed upstream, absorbed downstream)
/// with byte-identical values, completion time and RNG stream position
/// across all three tiers — the strongest form of the zero-copy
/// hand-off being accounting-neutral.
#[test]
fn relayed_pipeline_books_balance_across_tiers() {
    let src = relay_query(4_000, 3, 6_000);
    let absorbed = assert_books_match(&src, 0.05);
    assert!(
        absorbed > 1,
        "both the relay and the downstream absorber must ride the columnar path"
    );
}

/// Relay books with jitter off: the per-element charge loop collapses
/// to the no-draw fast paths on both SPs.
#[test]
fn relayed_books_balance_without_jitter() {
    let src = relay_query(4_000, 3, 6_000);
    let absorbed = assert_books_match(&src, 0.0);
    assert!(absorbed > 1);
    let r = run(&src, &options(0.0, true, true));
    assert_eq!(r.stats().jitter_draws, 0, "no draws when jitter is off");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The accounting contract holds over random jitter amplitudes and
    /// stage constants, including thresholds that keep everything or
    /// nothing (empty / full selection vectors at the fold).
    #[test]
    fn books_balance_over_random_workloads(
        jitter in prop_oneof![Just(0.0), 0.01f64..0.2],
        mul in 1i64..5,
        threshold in prop_oneof![Just(0i64), Just(i64::MAX / 2), 1i64..10_000],
        n in 500u64..2_500,
    ) {
        let src = filter_query(n, mul, threshold);
        let absorbed = assert_books_match(&src, jitter);
        prop_assert!(absorbed > 0);
    }

    /// The same contract for relayed chains: random jitter, transform
    /// constants and thresholds — including drop-everything filters
    /// (empty selections crossing the channel as nothing at all) and
    /// keep-everything filters (prefix relays with no selection
    /// vector) — leave the two-SP books identical across tiers.
    #[test]
    fn relay_books_balance_over_random_workloads(
        jitter in prop_oneof![Just(0.0), 0.01f64..0.2],
        mul in 1i64..5,
        threshold in prop_oneof![Just(0i64), Just(i64::MAX / 2), 1i64..10_000],
        n in 500u64..2_500,
    ) {
        let src = relay_query(n, mul, threshold);
        let absorbed = assert_books_match(&src, jitter);
        prop_assert!(absorbed > 0);
    }
}
