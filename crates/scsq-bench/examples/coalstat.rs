//! Per-point coalescing diagnostics (dev tool).
use scsq_bench::{buffer_sweep, fig15, fig6, Scale};
use scsq_core::{HardwareSpec, RunOptions, Scsq, Value};
use std::time::Instant;

fn main() {
    let spec = HardwareSpec::lofar();
    let scale = Scale {
        arrays: 40,
        ..Scale::quick()
    };
    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&fig6::query(scale)).unwrap();
    for &buffer in &buffer_sweep() {
        let options = RunOptions {
            mpi_buffer: buffer,
            ..RunOptions::default()
        };
        let t = Instant::now();
        let on = plan.run(&spec, &options).unwrap();
        let t_on = t.elapsed();
        let off_opts = RunOptions {
            coalesce: false,
            ..options.clone()
        };
        let t = Instant::now();
        let _off = plan.run(&spec, &off_opts).unwrap();
        let t_off = t.elapsed();
        let s = on.stats();
        println!(
            "fig6 buf={buffer:>8}: events={:>8} jumps={:>4} skipped={:>8} digests={:>6} on={:>9.3?} off={:>9.3?} speedup={:.2}",
            s.events, s.coalesce.jumps, s.coalesce.periods_skipped, s.coalesce.digests, t_on, t_off,
            t_off.as_secs_f64() / t_on.as_secs_f64()
        );
    }
    for q in 1..=6u8 {
        let text = fig15::query(q, scale);
        let plan = scsq
            .prepare_with(&text, &[("n", Value::Integer(4))])
            .unwrap();
        let options = RunOptions::default();
        let t = Instant::now();
        let on = plan.run(&spec, &options).unwrap();
        let t_on = t.elapsed();
        let off_opts = RunOptions {
            coalesce: false,
            ..options
        };
        let t = Instant::now();
        let _off = plan.run(&spec, &off_opts).unwrap();
        let t_off = t.elapsed();
        let s = on.stats();
        println!(
            "fig15 q{q} n=4:     events={:>8} jumps={:>4} skipped={:>8} digests={:>6} on={:>9.3?} off={:>9.3?} speedup={:.2}",
            s.events, s.coalesce.jumps, s.coalesce.periods_skipped, s.coalesce.digests, t_on, t_off,
            t_off.as_secs_f64() / t_on.as_secs_f64()
        );
    }
}
