//! Figure 15: BlueGene inbound streaming bandwidth of Queries 1–6 vs the
//! number of parallel back-end generator RPs.
//!
//! §3.2 defines six ways to inject streams into the BlueGene. The query
//! texts below are the paper's, verbatim modulo whitespace; the sweep
//! variable `n` is pre-bound per the paper's "altering a query
//! variable n". The expected shape:
//!
//! 1. Q1–Q4 (one I/O node) far below Q5–Q6 (many I/O nodes);
//! 2. Q3/Q4 slightly above Q1/Q2 (two receiving compute nodes off-load
//!    the single receiver);
//! 3. Q5 peaks (~920 Mbps) and beats Q6 — fewer distinct external hosts
//!    is better;
//! 4. Q1 beats Q2 for the same reason;
//! 5. Q5 dips at n=5 (only four I/O nodes; psets start sharing).

use crate::{sweep, ExecMode, Scale, SweepPoint};
use scsq_core::{ClusterName, HardwareSpec, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::Series;

/// The six inbound queries of §3.2, with the generator scale substituted
/// and `n` left to pre-binding.
pub fn query(number: u8, scale: Scale) -> String {
    let gen = format!(
        "(select gen_array({bytes},{n}) from integer i where i in iota(1,n))",
        bytes = scale.array_bytes,
        n = scale.arrays
    );
    let single_receiver = |alloc: &str| {
        format!(
            "select extract(c) from \
             bag of sp a, sp b, sp c, \
             integer n \
             where c=sp(extract(b), 'bg') \
             and b=sp(count(merge(a)), 'bg') \
             and a=spv({gen}, 'be', {alloc}) \
             and n=4;"
        )
    };
    let parallel_receivers = |bg_alloc: &str, be_alloc: &str| {
        format!(
            "select extract(c) from \
             bag of sp a, bag of sp b, sp c, \
             integer n \
             where c=sp(streamof(sum(merge(b))), 'bg') \
             and b=spv( \
               (select streamof(count(extract(p))) \
                from sp p \
                where p in a), \
               'bg', {bg_alloc}) \
             and a=spv({gen}, 'be', {be_alloc}) \
             and n=4;"
        )
    };
    match number {
        1 => single_receiver("1"),
        2 => single_receiver("urr('be')"),
        3 => parallel_receivers("inPset(1)", "1"),
        4 => parallel_receivers("inPset(1)", "urr('be')"),
        5 => parallel_receivers("psetrr()", "1"),
        6 => parallel_receivers("psetrr()", "urr('be')"),
        other => panic!("there is no Query {other}; the paper defines Queries 1-6"),
    }
}

/// Runs the Figure 15 sweep: six series (Query 1–6), with x = n (number
/// of back-end generator RPs) and y = total inbound streaming bandwidth
/// (Mbps), the paper's axis.
///
/// # Errors
///
/// Propagates query errors.
pub fn run(spec: &HardwareSpec, scale: Scale, ns: &[u32]) -> Result<Vec<Series>, ScsqError> {
    run_with_jobs(spec, scale, ns, crate::default_jobs(), ExecMode::default())
}

/// [`run`] with an explicit worker count (`jobs = 1` runs sequentially;
/// the result is bit-identical for every `jobs` value) and execution
/// mode. The sweep variable `n` participates in binding, so each
/// (query, n) pair compiles once and its repetitions replay the plan.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_with_jobs(
    spec: &HardwareSpec,
    scale: Scale,
    ns: &[u32],
    jobs: usize,
    mode: ExecMode,
) -> Result<Vec<Series>, ScsqError> {
    let mut scsq = Scsq::with_spec(spec.clone());
    let options = RunOptions {
        coalesce: mode.coalesce,
        fuse: mode.fuse,
        columnar: mode.columnar,
        ..RunOptions::default()
    };
    let mut labels = Vec::new();
    let mut points = Vec::with_capacity(6 * ns.len());
    for q in 1..=6u8 {
        let text = query(q, scale);
        let si = labels.len();
        labels.push(format!("Query {q}"));
        for &n in ns {
            let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(n)))])?;
            points.push(SweepPoint {
                series: si,
                x: f64::from(n),
                plan,
                options: options.clone(),
                spec: spec.clone(),
            });
        }
    }
    let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
    sweep(
        &labels,
        &points,
        scale,
        |r| r.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene),
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_parse_and_run_in_miniature() {
        let spec = HardwareSpec::lofar();
        let scale = Scale::quick();
        let series = run(&spec, scale, &[2]).unwrap();
        assert_eq!(series.len(), 6);
        for s in &series {
            let y = s.y_at(2.0).unwrap();
            assert!(y > 0.0, "{}: {y}", s.label());
        }
    }

    #[test]
    fn single_io_queries_lag_multi_io_queries() {
        let spec = HardwareSpec::lofar();
        let scale = Scale::quick();
        let series = run(&spec, scale, &[4]).unwrap();
        let at4 = |i: usize| series[i].y_at(4.0).unwrap();
        let (q1, q2, q3, q5, q6) = (at4(0), at4(1), at4(2), at4(4), at4(5));
        // Observation 1: one I/O node ≪ many I/O nodes.
        assert!(q5 > 1.5 * q3, "q5={q5:.0} q3={q3:.0}");
        // Observation 3: Q5 beats Q6.
        assert!(q5 > 1.15 * q6, "q5={q5:.0} q6={q6:.0}");
        // Observation 4: Q1 beats Q2.
        assert!(q1 > q2, "q1={q1:.0} q2={q2:.0}");
        // Observation 2: Q3 at least matches Q1.
        assert!(q3 >= 0.95 * q1, "q3={q3:.0} q1={q1:.0}");
    }
}
