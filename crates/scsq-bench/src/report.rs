//! Table / CSV rendering of figure series, plus the `--metrics`
//! snapshot artifact.

use scsq_sim::Series;

/// Writes the global [`scsq_core::metrics`] hub snapshot as JSON to
/// `path` and reports it on stderr. Every figure binary calls this when
/// invoked with `--metrics PATH`.
///
/// # Errors
///
/// Propagates the file write error.
pub fn write_hub_metrics(path: &str) -> std::io::Result<()> {
    let snap = scsq_core::metrics::hub().snapshot();
    std::fs::write(path, snap.to_json())?;
    eprintln!(
        "metrics: {} queries, {} events, {} bytes delivered -> {path}",
        snap.queries, snap.events, snap.bytes_delivered
    );
    Ok(())
}

/// [`write_hub_metrics`] with a `"pass"` field spliced into the JSON
/// object, recording *which* pass of a multi-pass binary the counters
/// cover. `perfstat --metrics` writes `"pass": "warmup"`: its hub is
/// enabled for the warm-up pass only, so the timed passes are never
/// perturbed.
///
/// # Errors
///
/// Propagates the file write error.
pub fn write_hub_metrics_tagged(path: &str, pass: &str) -> std::io::Result<()> {
    let snap = scsq_core::metrics::hub().snapshot();
    let json = snap
        .to_json()
        .replacen("{\n", &format!("{{\n  \"pass\": \"{pass}\",\n"), 1);
    std::fs::write(path, json)?;
    eprintln!(
        "metrics ({pass} pass): {} queries, {} events, {} bytes delivered -> {path}",
        snap.queries, snap.events, snap.bytes_delivered
    );
    Ok(())
}

/// Renders a figure as an aligned text table: one row per x value, one
/// column per series.
pub fn print_figure(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("# y = {y_label}\n"));
    // The sorted union of x values over all series; series missing a
    // point show a dash.
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points().iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    // Header.
    out.push_str(&format!("{x_label:>12}"));
    for s in series {
        out.push_str(&format!("  {:>28}", s.label()));
    }
    out.push('\n');
    for x in xs {
        out.push_str(&format!("{x:>12}"));
        for s in series {
            match s.y_at(x) {
                Some(y) => out.push_str(&format!("  {y:>28.2}")),
                None => out.push_str(&format!("  {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders all series as CSV rows `label,x,y,sd` — the `sd` column is
/// the sample standard deviation over the repetitions behind each mean.
pub fn series_to_csv(series: &[Series]) -> String {
    let mut out = String::from("series,x,y,sd\n");
    for s in series {
        out.push_str(&s.to_csv());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        let mut a = Series::new("alpha");
        a.push(1.0, 10.0);
        a.push_with_dev(2.0, 20.0, 0.5);
        let mut b = Series::new("beta");
        b.push(1.0, 11.0);
        b.push(2.0, 21.0);
        vec![a, b]
    }

    #[test]
    fn table_has_header_and_rows() {
        let t = print_figure("Fig X", "n", "Mbps", &sample());
        assert!(t.contains("# Fig X"));
        assert!(t.contains("alpha"));
        assert!(t.contains("beta"));
        assert!(t.lines().count() >= 5);
        assert!(t.contains("21.00"));
    }

    #[test]
    fn tagged_metrics_json_carries_the_pass_field() {
        let path = std::env::temp_dir().join("scsq_bench_tagged_metrics_test.json");
        write_hub_metrics_tagged(path.to_str().unwrap(), "warmup").unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.starts_with("{\n  \"pass\": \"warmup\",\n"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"queries\":"));
    }

    #[test]
    fn csv_lists_every_point() {
        let c = series_to_csv(&sample());
        assert_eq!(c.lines().count(), 5);
        assert_eq!(c.lines().next(), Some("series,x,y,sd"));
        assert!(c.contains("alpha,1,10,0\n"));
        assert!(c.contains("alpha,2,20,0.5\n"));
        assert!(c.contains("beta,2,21,0\n"));
    }
}
