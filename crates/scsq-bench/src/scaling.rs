//! The paper's §5 open question: "In the current hardware configuration,
//! we have only four I/O nodes and four nodes in the back-end cluster.
//! It remains to be investigated what happens for large amounts of
//! back-end and I/O nodes."
//!
//! This study scales the simulated partition (psets/I/O nodes ×2 and ×4,
//! back-end cluster likewise) and re-runs the two inbound strategies of
//! Figure 15:
//!
//! * **Q5-style** (all generators co-located on one back-end node,
//!   receivers spread over psets) — bounded by the single sender NIC
//!   (~920 Mbps) no matter how many I/O nodes exist.
//! * **Q6-style** (generators spread over back-end nodes) — can exceed
//!   one NIC, but the per-external-host I/O coordination cost the paper
//!   discovered grows with the host count, so aggregate bandwidth
//!   saturates far below linear scaling.
//!
//! The third sweep varies the number of *sender hosts* at a fixed large
//! partition, exposing the model's optimum: use as few hosts as saturate
//! the I/O side, and no more — the quantitative version of the paper's
//! "co-locate back-end RPs to the same compute node until saturation".

use crate::{sweep, ExecMode, Scale, SweepPoint};
use scsq_core::{ClusterName, HardwareSpec, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::Series;

/// A partition configuration scaled from the paper's.
pub fn partition(torus_x: usize, torus_y: usize, torus_z: usize, be_nodes: usize) -> HardwareSpec {
    HardwareSpec {
        torus_x,
        torus_y,
        torus_z,
        back_end_nodes: be_nodes,
        ..HardwareSpec::lofar()
    }
}

/// The three partition sizes of the study: the paper's (4 I/O nodes),
/// double (8), and quadruple (16).
pub fn partitions() -> Vec<(&'static str, HardwareSpec)> {
    vec![
        ("paper (4 io, 4 be)", partition(4, 4, 2, 4)),
        ("double (8 io, 8 be)", partition(8, 4, 2, 8)),
        ("quad (16 io, 16 be)", partition(8, 8, 2, 16)),
    ]
}

/// The inbound query both strategies run: `n` back-end generators
/// (placed per `be_alloc`) streaming into pset-spread BlueGene
/// receivers, summed at a collector. Public so the binary can hand a
/// representative instance to [`crate::profile_representative`].
pub fn inbound_query(scale: Scale, be_alloc: &str) -> String {
    format!(
        "select extract(c) from \
         bag of sp a, bag of sp b, sp c, \
         integer n \
         where c=sp(streamof(sum(merge(b))), 'bg') \
         and b=spv( \
           (select streamof(count(extract(p))) \
            from sp p \
            where p in a), \
           'bg', psetrr()) \
         and a=spv( \
           (select gen_array({bytes},{n}) \
            from integer i where i in iota(1,n)), \
           'be', {be_alloc}) \
         and n=4;",
        bytes = scale.array_bytes,
        n = scale.arrays
    )
}

/// Sweeps n (parallel streams) for each partition size and both sender
/// strategies. Series are labeled `"<strategy> @ <partition>"`; x = n,
/// y = aggregate inbound Mbps.
///
/// # Errors
///
/// Propagates query errors.
pub fn run(scale: Scale, ns: &[u32]) -> Result<Vec<Series>, ScsqError> {
    run_with_jobs(scale, ns, crate::default_jobs(), ExecMode::default())
}

/// [`run`] with an explicit worker count (`jobs = 1` runs sequentially;
/// the result is bit-identical for every `jobs` value) and execution
/// mode. Each (partition, strategy, n) cell compiles once — the
/// partition changes the hardware the plan is placed against.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_with_jobs(
    scale: Scale,
    ns: &[u32],
    jobs: usize,
    mode: ExecMode,
) -> Result<Vec<Series>, ScsqError> {
    let options = RunOptions {
        coalesce: mode.coalesce,
        fuse: mode.fuse,
        columnar: mode.columnar,
        ..RunOptions::default()
    };
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for (name, spec) in partitions() {
        let mut scsq = Scsq::with_spec(spec.clone());
        for (strategy, be_alloc) in [("co-located", "1"), ("spread", "urr('be')")] {
            let text = inbound_query(scale, be_alloc);
            let si = labels.len();
            labels.push(format!("{strategy} @ {name}"));
            for &n in ns {
                if n as usize > spec.psets() {
                    continue;
                }
                let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(n)))])?;
                points.push(SweepPoint {
                    series: si,
                    x: f64::from(n),
                    plan,
                    options: options.clone(),
                    spec: spec.clone(),
                });
            }
        }
    }
    let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
    sweep(
        &labels,
        &points,
        scale,
        |r| r.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene),
        jobs,
    )
}

/// At the quad partition with 16 parallel streams, sweeps how many
/// back-end *hosts* the generators occupy (the cluster is built with
/// exactly that many nodes, so `urr` packs them). x = hosts, y = Mbps.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_host_sweep(scale: Scale, hosts: &[u32]) -> Result<Series, ScsqError> {
    run_host_sweep_with_jobs(scale, hosts, crate::default_jobs(), ExecMode::default())
}

/// [`run_host_sweep`] with an explicit worker count and execution
/// mode.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_host_sweep_with_jobs(
    scale: Scale,
    hosts: &[u32],
    jobs: usize,
    mode: ExecMode,
) -> Result<Series, ScsqError> {
    let options = RunOptions {
        coalesce: mode.coalesce,
        fuse: mode.fuse,
        columnar: mode.columnar,
        ..RunOptions::default()
    };
    let streams = 16u32;
    let text = inbound_query(scale, "urr('be')");
    let mut points = Vec::with_capacity(hosts.len());
    for &k in hosts {
        let spec = partition(8, 8, 2, k as usize);
        let mut scsq = Scsq::with_spec(spec.clone());
        let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(streams)))])?;
        points.push(SweepPoint {
            series: 0,
            x: f64::from(k),
            plan,
            options: options.clone(),
            spec,
        });
    }
    let mut series = sweep(
        &["16 streams @ quad partition"],
        &points,
        scale,
        |r| r.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene),
        jobs,
    )?;
    Ok(series.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_scale_psets() {
        let ps = partitions();
        assert_eq!(ps[0].1.psets(), 4);
        assert_eq!(ps[1].1.psets(), 8);
        assert_eq!(ps[2].1.psets(), 16);
    }

    #[test]
    fn colocated_strategy_is_nic_capped_even_with_many_io_nodes() {
        let series = run(Scale::quick(), &[8]).unwrap();
        let quad_coloc = series
            .iter()
            .find(|s| s.label() == "co-located @ quad (16 io, 16 be)")
            .unwrap();
        let y = quad_coloc.y_at(8.0).unwrap();
        assert!(
            y < 1_000.0,
            "a single sender NIC cannot exceed 1 Gbps: {y:.0} Mbps"
        );
    }

    #[test]
    fn one_host_per_stream_saturates_below_one_nic_at_any_size() {
        // The study's surprise: the per-host I/O coordination cost the
        // paper discovered caps the 1-host-per-stream strategy around
        // 800-900 Mbps aggregate no matter how much hardware is added.
        let series = run(Scale::quick(), &[8]).unwrap();
        for label in [
            "spread @ double (8 io, 8 be)",
            "spread @ quad (16 io, 16 be)",
        ] {
            let y = series
                .iter()
                .find(|s| s.label() == label)
                .unwrap()
                .y_at(8.0)
                .unwrap();
            assert!(
                (400.0..1_000.0).contains(&y),
                "{label}: {y:.0} Mbps should saturate below one NIC"
            );
        }
    }

    #[test]
    fn concentrating_streams_on_few_hosts_scales_past_one_nic() {
        // 16 streams from 4 hosts through 16 I/O nodes beats both the
        // single-host (NIC-bound) and the 16-host (coordination-bound)
        // extremes.
        let series = run_host_sweep(Scale::quick(), &[1, 4, 16]).unwrap();
        let y1 = series.y_at(1.0).unwrap();
        let y4 = series.y_at(4.0).unwrap();
        let y16 = series.y_at(16.0).unwrap();
        assert!(y1 < 1_000.0, "one NIC caps the single host: {y1:.0}");
        assert!(y4 > 1_500.0, "4 hosts x 16 streams: {y4:.0}");
        assert!(y4 > y16, "too many hosts hurts: {y4:.0} vs {y16:.0}");
    }
}
