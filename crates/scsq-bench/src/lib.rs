//! # scsq-bench — the figure-regeneration harness
//!
//! One module per result figure of the paper's evaluation (§3), plus the
//! node-selection ablation motivated by §5. Each module builds the
//! paper's SCSQL query texts, sweeps the paper's parameter, repeats each
//! point under jittered hardware specs (the paper's five-repetition
//! protocol), and returns labeled [`scsq_sim::Series`] values ready to
//! print as the figure's rows.
//!
//! Binaries:
//!
//! * `fig6_p2p` — intra-BlueGene point-to-point bandwidth vs stream
//!   buffer size, single vs double buffering (paper Fig 6).
//! * `fig8_merge` — stream-merging bandwidth for the sequential vs
//!   balanced node selections of Fig 7, vs buffer size (paper Fig 8).
//! * `fig15_inbound` — inbound streaming bandwidth of Queries 1–6 vs the
//!   number of back-end generator RPs (paper Fig 15).
//! * `ablation_placement` — naïve vs topology-aware node selection on an
//!   unconstrained inbound workload (§5 future work).

pub mod ablation;
pub mod expensive;
pub mod fig15;
pub mod fig6;
pub mod fig8;
pub mod pool;
pub mod report;
pub mod scaling;
pub mod serve;

pub use pool::{
    default_jobs, parse_coalesce, parse_columnar, parse_fuse, parse_jobs, parse_metrics,
    parse_profile, parse_trace, run_indexed,
};
pub use report::{print_figure, series_to_csv, write_hub_metrics, write_hub_metrics_tagged};

use scsq_core::{HardwareSpec, PreparedQuery, QueryResult, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::{RunningStats, Series};

/// Shared experiment scale knobs. The paper streams 100 × 3 MB arrays
/// per generator and repeats five times; tests use smaller scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Bytes per generated array (paper: 3_000_000).
    pub array_bytes: u64,
    /// Arrays per generator (paper: 100).
    pub arrays: u64,
    /// Repetitions per point (paper: 5).
    pub reps: u64,
    /// Jitter amplitude applied to hardware rates across repetitions.
    pub jitter: f64,
}

impl Scale {
    /// The paper's full experiment scale.
    pub fn paper() -> Scale {
        Scale {
            array_bytes: 3_000_000,
            arrays: 100,
            reps: 5,
            jitter: 0.02,
        }
    }

    /// A reduced scale for fast tests and criterion runs.
    pub fn quick() -> Scale {
        Scale {
            array_bytes: 300_000,
            arrays: 10,
            reps: 1,
            jitter: 0.0,
        }
    }
}

/// Execution-path switches shared by every figure runner: which fast
/// tiers are on. Results are bit-identical for every combination — the
/// switches only change the wall-clock (coalescing skips events
/// analytically; fusion swaps the stage interpreter for jump-table
/// programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecMode {
    /// Train coalescing ([`RunOptions::coalesce`]).
    pub coalesce: bool,
    /// Fused stage programs ([`RunOptions::fuse`]).
    pub fuse: bool,
    /// Columnar batch absorption ([`RunOptions::columnar`]).
    pub columnar: bool,
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode {
            coalesce: true,
            fuse: true,
            columnar: true,
        }
    }
}

impl ExecMode {
    /// Copies the switches into a set of run options.
    pub fn apply(self, options: RunOptions) -> RunOptions {
        RunOptions {
            coalesce: self.coalesce,
            fuse: self.fuse,
            columnar: self.columnar,
            ..options
        }
    }
}

/// Mean and sample standard deviation of a metric over a point's
/// repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricStats {
    /// Arithmetic mean over the repetitions.
    pub mean: f64,
    /// Sample standard deviation (zero for a single repetition).
    pub std_dev: f64,
}

/// One cell of a sweep: which series it belongs to, its x coordinate,
/// the compiled plan to run, the runtime options, and the base hardware
/// it runs on. [`sweep`] expands each point into `scale.reps` jobs.
pub struct SweepPoint {
    /// Index into the sweep's label list.
    pub series: usize,
    /// The point's x coordinate.
    pub x: f64,
    /// The compiled plan (prepare once per distinct query text).
    pub plan: PreparedQuery,
    /// Runtime knobs for this point.
    pub options: RunOptions,
    /// The un-jittered hardware specification for this point.
    pub spec: HardwareSpec,
}

/// Executes a sweep's `(point, repetition)` grid — in parallel on `jobs`
/// worker threads — and folds the repetitions of each point into a
/// [`Series`] point carrying mean and standard deviation.
///
/// The assembled series are **bit-identical for every `jobs` value**:
/// each repetition derives its (possibly jittered) hardware spec from
/// its own index, every simulation is single-threaded and deterministic,
/// and [`run_indexed`] returns results in job order regardless of
/// scheduling. `jobs = 1` runs everything inline on the calling thread.
///
/// # Errors
///
/// Propagates the first failing repetition's error (in job order).
pub fn sweep(
    labels: &[&str],
    points: &[SweepPoint],
    scale: Scale,
    metric: impl Fn(&QueryResult) -> f64 + Sync,
    jobs: usize,
) -> Result<Vec<Series>, ScsqError> {
    let reps = scale.reps.max(1);
    let metric = &metric;
    let mut job_list = Vec::with_capacity(points.len() * reps as usize);
    for point in points {
        for rep in 0..reps {
            job_list.push(move || -> Result<f64, ScsqError> {
                // The jitter protocol: repetition r of every point runs
                // on the same perturbed hardware, seeded independently
                // of worker scheduling.
                let result = if scale.jitter > 0.0 {
                    let spec = point.spec.jittered(0xC0FFEE ^ rep, scale.jitter);
                    point.plan.run(&spec, &point.options)?
                } else {
                    point.plan.run(&point.spec, &point.options)?
                };
                // One relaxed load when the hub is disabled; relaxed
                // adds are order-independent, so recording from worker
                // threads keeps the sweep bit-deterministic.
                scsq_core::metrics::hub().record(&result);
                Ok(metric(&result))
            });
        }
    }
    let results = pool::run_indexed(job_list, jobs);

    let mut series: Vec<Series> = labels.iter().map(|label| Series::new(*label)).collect();
    for (point, chunk) in points.iter().zip(results.chunks(reps as usize)) {
        let mut stats = RunningStats::new();
        for r in chunk {
            match r {
                Ok(y) => stats.push(*y),
                Err(e) => return Err(e.clone()),
            }
        }
        series[point.series].push_with_dev(point.x, stats.mean(), stats.sample_std_dev());
    }
    Ok(series)
}

/// Runs `query` once per repetition on jittered hardware and returns the
/// mean and sample standard deviation of `metric` over the repetitions.
///
/// The query is parsed, bound, and placed exactly once; every repetition
/// replays the prepared plan on a fresh (jittered) environment.
///
/// # Errors
///
/// Propagates the first query error.
pub fn mean_metric(
    base: &HardwareSpec,
    options: &RunOptions,
    scale: Scale,
    query: &str,
    bindings: &[(&str, Value)],
    metric: impl Fn(&QueryResult) -> f64,
) -> Result<MetricStats, ScsqError> {
    let mut scsq = Scsq::with_spec(base.clone());
    *scsq.options_mut() = options.clone();
    let plan = scsq.prepare_with(query, bindings)?;
    let mut stats = RunningStats::new();
    for rep in 0..scale.reps {
        let result = if scale.jitter > 0.0 {
            plan.run(&base.jittered(0xC0FFEE ^ rep, scale.jitter), options)?
        } else {
            // No jitter: run straight off the borrowed base spec.
            plan.run(base, options)?
        };
        scsq_core::metrics::hub().record(&result);
        stats.push(metric(&result));
    }
    Ok(MetricStats {
        mean: stats.mean(),
        std_dev: stats.sample_std_dev(),
    })
}

/// The `--profile`/`--trace` hook shared by every figure binary: runs
/// **one representative execution** of `query` under the explain-analyze
/// profiler and reports what the sweep's timings cannot show — where
/// each stage's calls, elements, simulated busy time and wall time went.
///
/// The run happens on the calling thread (the flight-recorder span ring
/// is thread-local, so a trace must be drained where it was filled) and
/// is separate from the figure sweep itself: profiling a representative
/// point keeps the swept measurements unperturbed. With `show_profile`
/// the per-stage table is printed to stdout; with `trace` the whole
/// observability layer is switched on for the run and its simulated-
/// timeline spans are written to the path in Chrome trace-event format
/// (loadable in `chrome://tracing` / Perfetto).
///
/// Exits the process on query or I/O errors, matching the figure
/// binaries' handling of their own sweeps.
pub fn profile_representative(
    spec: &HardwareSpec,
    query: &str,
    bindings: &[(&str, Value)],
    mode: ExecMode,
    show_profile: bool,
    trace: Option<&str>,
) {
    let fail = |e: ScsqError| -> ! {
        eprintln!("representative profiled run failed: {e}");
        std::process::exit(1);
    };
    let mut scsq = Scsq::with_spec(spec.clone());
    *scsq.options_mut() = mode.apply(RunOptions::default());
    let plan = scsq
        .prepare_with(query, bindings)
        .unwrap_or_else(|e| fail(e));
    let options = mode.apply(RunOptions::default());
    if trace.is_some() {
        // Flip the hub *and* the span gate together, and discard any
        // spans a prior pass of this binary left in the ring.
        scsq_core::metrics::set_observability(true);
        let _ = scsq_sim::obs::take_spans();
    }
    let (_, profile) = plan
        .explain_analyze(spec, &options)
        .unwrap_or_else(|e| fail(e));
    if show_profile {
        print!("{}", profile.render());
    }
    if let Some(path) = trace {
        scsq_core::metrics::set_observability(false);
        let drain = scsq_sim::obs::take_spans();
        let json = scsq_sim::obs::chrome_trace_json(&drain.spans);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "trace: {} spans ({} overwritten) -> {path}",
            drain.spans.len(),
            drain.dropped
        );
    }
}

/// The buffer-size sweep used by Figures 6 and 8.
pub fn buffer_sweep() -> Vec<u64> {
    vec![
        100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
        1_000_000,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        let p = Scale::paper();
        assert_eq!(p.array_bytes, 3_000_000);
        assert_eq!(p.arrays, 100);
        assert_eq!(p.reps, 5);
        let q = Scale::quick();
        assert!(q.array_bytes < p.array_bytes);
    }

    #[test]
    fn buffer_sweep_is_monotone() {
        let s = buffer_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(&1_000), "the paper's optimal point is swept");
    }
}
