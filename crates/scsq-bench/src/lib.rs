//! # scsq-bench — the figure-regeneration harness
//!
//! One module per result figure of the paper's evaluation (§3), plus the
//! node-selection ablation motivated by §5. Each module builds the
//! paper's SCSQL query texts, sweeps the paper's parameter, repeats each
//! point under jittered hardware specs (the paper's five-repetition
//! protocol), and returns labeled [`scsq_sim::Series`] values ready to
//! print as the figure's rows.
//!
//! Binaries:
//!
//! * `fig6_p2p` — intra-BlueGene point-to-point bandwidth vs stream
//!   buffer size, single vs double buffering (paper Fig 6).
//! * `fig8_merge` — stream-merging bandwidth for the sequential vs
//!   balanced node selections of Fig 7, vs buffer size (paper Fig 8).
//! * `fig15_inbound` — inbound streaming bandwidth of Queries 1–6 vs the
//!   number of back-end generator RPs (paper Fig 15).
//! * `ablation_placement` — naïve vs topology-aware node selection on an
//!   unconstrained inbound workload (§5 future work).

pub mod ablation;
pub mod expensive;
pub mod fig15;
pub mod fig6;
pub mod fig8;
pub mod report;
pub mod scaling;

pub use report::{print_figure, series_to_csv};

use scsq_core::{HardwareSpec, QueryResult, RunOptions, Scsq, ScsqError, Value};

/// Shared experiment scale knobs. The paper streams 100 × 3 MB arrays
/// per generator and repeats five times; tests use smaller scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Bytes per generated array (paper: 3_000_000).
    pub array_bytes: u64,
    /// Arrays per generator (paper: 100).
    pub arrays: u64,
    /// Repetitions per point (paper: 5).
    pub reps: u64,
    /// Jitter amplitude applied to hardware rates across repetitions.
    pub jitter: f64,
}

impl Scale {
    /// The paper's full experiment scale.
    pub fn paper() -> Scale {
        Scale {
            array_bytes: 3_000_000,
            arrays: 100,
            reps: 5,
            jitter: 0.02,
        }
    }

    /// A reduced scale for fast tests and criterion runs.
    pub fn quick() -> Scale {
        Scale {
            array_bytes: 300_000,
            arrays: 10,
            reps: 1,
            jitter: 0.0,
        }
    }
}

/// Runs `query` once per repetition on jittered hardware and returns the
/// mean of `metric` over the repetitions.
///
/// # Errors
///
/// Propagates the first query error.
pub fn mean_metric(
    base: &HardwareSpec,
    options: &RunOptions,
    scale: Scale,
    query: &str,
    bindings: &[(&str, Value)],
    metric: impl Fn(&QueryResult) -> f64,
) -> Result<f64, ScsqError> {
    let mut acc = 0.0;
    for rep in 0..scale.reps {
        let spec = if scale.jitter > 0.0 {
            base.jittered(0xC0FFEE ^ rep, scale.jitter)
        } else {
            base.clone()
        };
        let mut scsq = Scsq::with_spec(spec);
        *scsq.options_mut() = options.clone();
        let result = scsq.run_with(query, bindings)?;
        acc += metric(&result);
    }
    Ok(acc / scale.reps as f64)
}

/// The buffer-size sweep used by Figures 6 and 8.
pub fn buffer_sweep() -> Vec<u64> {
    vec![
        100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
        1_000_000,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        let p = Scale::paper();
        assert_eq!(p.array_bytes, 3_000_000);
        assert_eq!(p.arrays, 100);
        assert_eq!(p.reps, 5);
        let q = Scale::quick();
        assert!(q.array_bytes < p.array_bytes);
    }

    #[test]
    fn buffer_sweep_is_monotone() {
        let s = buffer_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(&1_000), "the paper's optimal point is swept");
    }
}
