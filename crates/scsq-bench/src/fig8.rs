//! Figure 8: intra-BlueGene stream-merging bandwidth for the two node
//! selections of Figure 7, vs MPI stream buffer size.
//!
//! §3.1: generators `a` and `b` stream 3 MB arrays into `c` (node 0),
//! which counts the merged stream. In the *sequential* selection
//! (Fig 7A: a=node 1, b=node 2) b's messages are routed through a's
//! busy communication co-processor; in the *balanced* selection (Fig 7B:
//! a=node 1, b=node 4) both flows reach c directly. The paper reports:
//! bandwidth depends strongly on the node selection (up to ~60 % better
//! balanced, §5), double buffering matters less than for point-to-point,
//! and merging needs much larger buffers (co-processor switch penalty).

use crate::{sweep, ExecMode, Scale, SweepPoint};
use scsq_core::{HardwareSpec, NodeId, RunOptions, Scsq, ScsqError};
use scsq_sim::Series;

/// Node selections of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Fig 7A: x=1, y=2 — b routes through a.
    Sequential,
    /// Fig 7B: x=1, y=4 — independent routes.
    Balanced,
}

impl Selection {
    /// The node number for generator b.
    pub fn y(self) -> usize {
        match self {
            Selection::Sequential => 2,
            Selection::Balanced => 4,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Selection::Sequential => "sequential",
            Selection::Balanced => "balanced",
        }
    }
}

/// The paper's stream-merging query (§3.1) for a node selection.
pub fn query(scale: Scale, selection: Selection) -> String {
    format!(
        "select extract(c) \
         from sp a, sp b, sp c \
         where c=sp(count(merge({{a,b}})), 'bg',0) \
         and a=sp(gen_array({bytes},{n}),'bg',1) \
         and b=sp(gen_array({bytes},{n}),'bg',{y});",
        bytes = scale.array_bytes,
        n = scale.arrays,
        y = selection.y()
    )
}

/// Runs the Figure 8 sweep: four series (selection × buffering), with
/// x = buffer size (bytes) and y = total streaming input bandwidth at
/// node c (MB/s).
///
/// # Errors
///
/// Propagates query errors.
pub fn run(spec: &HardwareSpec, scale: Scale, buffers: &[u64]) -> Result<Vec<Series>, ScsqError> {
    run_with_jobs(
        spec,
        scale,
        buffers,
        crate::default_jobs(),
        ExecMode::default(),
    )
}

/// [`run`] with an explicit worker count (`jobs = 1` runs sequentially;
/// the result is bit-identical for every `jobs` value) and execution
/// mode. One prepared plan per node selection serves both buffering
/// modes and every buffer size.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_with_jobs(
    spec: &HardwareSpec,
    scale: Scale,
    buffers: &[u64],
    jobs: usize,
    mode: ExecMode,
) -> Result<Vec<Series>, ScsqError> {
    let mut scsq = Scsq::with_spec(spec.clone());
    let mut labels = Vec::new();
    let mut points = Vec::with_capacity(4 * buffers.len());
    for selection in [Selection::Sequential, Selection::Balanced] {
        let plan = scsq.prepare(&query(scale, selection))?;
        for (buffering, double) in [("single", false), ("double", true)] {
            let si = labels.len();
            labels.push(format!("{} / {buffering} buffering", selection.label()));
            for &buffer in buffers {
                points.push(SweepPoint {
                    series: si,
                    x: buffer as f64,
                    plan: plan.clone(),
                    options: RunOptions {
                        mpi_buffer: buffer,
                        mpi_double: double,
                        coalesce: mode.coalesce,
                        fuse: mode.fuse,
                        columnar: mode.columnar,
                        ..RunOptions::default()
                    },
                    spec: spec.clone(),
                });
            }
        }
    }
    let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
    sweep(
        &labels,
        &points,
        scale,
        |r| r.bandwidth_into(NodeId::bg(0)) / 1e6,
        jobs,
    )
}

/// The §5 headline: the best balanced-over-sequential bandwidth ratio
/// across the sweep ("stream merging performs up to 60 % better if no
/// busy intermediate nodes are involved").
pub fn best_balanced_gain(series: &[Series]) -> f64 {
    let find = |label: &str| {
        series
            .iter()
            .find(|s| s.label() == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
    };
    let seq = find("sequential / double buffering");
    let bal = find("balanced / double buffering");
    seq.points()
        .iter()
        .zip(bal.points())
        .map(|((_, s), (_, b))| b / s)
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_topology_effects() {
        let spec = HardwareSpec::lofar();
        let scale = Scale::quick();
        let buffers = [1_000u64, 100_000, 1_000_000];
        let series = run(&spec, scale, &buffers).unwrap();
        assert_eq!(series.len(), 4);
        let bal_double = series
            .iter()
            .find(|s| s.label() == "balanced / double buffering")
            .unwrap();
        let seq_double = series
            .iter()
            .find(|s| s.label() == "sequential / double buffering")
            .unwrap();

        // Balanced beats sequential at large buffers (paper obs. 1).
        let b = bal_double.y_at(1_000_000.0).unwrap();
        let s = seq_double.y_at(1_000_000.0).unwrap();
        assert!(b > 1.2 * s, "balanced {b:.1} vs sequential {s:.1} MB/s");

        // Merging needs much larger buffers than point-to-point: the
        // 1000-byte point is far below the 100 KB point (paper obs. 3).
        assert!(
            bal_double.y_at(1_000.0).unwrap() < 0.5 * bal_double.y_at(100_000.0).unwrap(),
            "{bal_double:?}"
        );

        // The headline gain is in the right ballpark (paper: up to 60 %).
        let gain = best_balanced_gain(&series);
        assert!(gain > 1.3 && gain < 2.2, "gain={gain:.2}");
    }
}
