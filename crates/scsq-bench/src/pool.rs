//! A deterministic scoped-thread worker pool for sweep jobs.
//!
//! Figure sweeps are embarrassingly parallel — every `(sweep point,
//! repetition)` simulation is independent — but their *results* must be
//! assembled in a fixed order so a parallel run is bit-identical to a
//! sequential one. [`run_indexed`] does exactly that: jobs carry their
//! index, workers claim indices from a shared atomic counter, and the
//! result vector is rebuilt in index order regardless of which worker
//! finished when. Determinism therefore does not depend on thread
//! scheduling at all; only the wall-clock does.
//!
//! Jobs are `FnOnce() -> T + Send` *without* a `'static` bound — the
//! pool runs under [`std::thread::scope`], so closures may borrow the
//! sweep's shared inputs (the base hardware spec, prepared query plans)
//! directly from the caller's stack.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism, or 1
/// when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--jobs N` / `--jobs=N` command-line flag, defaulting to
/// [`default_jobs`] when absent. `N` must be a positive integer;
/// anything else aborts with a usage message, matching the bench
/// binaries' handling of bad input.
pub fn parse_jobs(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--jobs" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v)
        } else {
            continue;
        };
        return match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs expects a positive integer (e.g. --jobs 4)");
                std::process::exit(2);
            }
        };
    }
    default_jobs()
}

/// Parses a `--metrics PATH` / `--metrics=PATH` command-line flag:
/// where to write the aggregated [`scsq_core::metrics`] hub snapshot
/// after the run (`None` when absent — the hub then stays disabled and
/// costs one atomic load per query). An empty path aborts with a usage
/// message.
pub fn parse_metrics(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--metrics" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            Some(v)
        } else {
            continue;
        };
        return match value {
            Some(path) if !path.is_empty() => Some(path.to_string()),
            _ => {
                eprintln!("--metrics expects an output path (e.g. --metrics metrics.json)");
                std::process::exit(2);
            }
        };
    }
    None
}

/// Parses the `--profile` presence flag: when given, the binary runs
/// one representative execution of its workload under the
/// explain-analyze profiler and prints the per-stage table
/// ([`crate::profile_representative`]). Off by default — the sweeps
/// themselves are never profiled, so the figures stay unperturbed.
pub fn parse_profile(args: &[String]) -> bool {
    args.iter().any(|a| a == "--profile")
}

/// Parses a `--trace PATH` / `--trace=PATH` command-line flag: where to
/// write the representative run's flight-recorder spans in Chrome
/// trace-event format (`None` when absent — the span gate then stays
/// off and costs one relaxed atomic load per site). An empty path
/// aborts with a usage message.
pub fn parse_trace(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--trace" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            Some(v)
        } else {
            continue;
        };
        return match value {
            Some(path) if !path.is_empty() => Some(path.to_string()),
            _ => {
                eprintln!("--trace expects an output path (e.g. --trace trace.json)");
                std::process::exit(2);
            }
        };
    }
    None
}

/// Parses a `--coalesce on|off` / `--coalesce=on|off` command-line
/// flag, defaulting to `true` (coalescing on) when absent. Anything
/// other than `on` or `off` aborts with a usage message.
pub fn parse_coalesce(args: &[String]) -> bool {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--coalesce" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--coalesce=") {
            Some(v)
        } else {
            continue;
        };
        return match value {
            Some("on") => true,
            Some("off") => false,
            _ => {
                eprintln!("--coalesce expects 'on' or 'off' (e.g. --coalesce off)");
                std::process::exit(2);
            }
        };
    }
    true
}

/// Parses a `--fuse on|off` / `--fuse=on|off` command-line flag,
/// defaulting to `true` (fused stage programs on) when absent. Anything
/// other than `on` or `off` aborts with a usage message.
pub fn parse_fuse(args: &[String]) -> bool {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--fuse" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--fuse=") {
            Some(v)
        } else {
            continue;
        };
        return match value {
            Some("on") => true,
            Some("off") => false,
            _ => {
                eprintln!("--fuse expects 'on' or 'off' (e.g. --fuse off)");
                std::process::exit(2);
            }
        };
    }
    true
}

/// Parses a `--columnar on|off` / `--columnar=on|off` command-line
/// flag, defaulting to `true` (columnar batch absorption on) when
/// absent. Anything other than `on` or `off` aborts with a usage
/// message.
pub fn parse_columnar(args: &[String]) -> bool {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--columnar" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--columnar=") {
            Some(v)
        } else {
            continue;
        };
        return match value {
            Some("on") => true,
            Some("off") => false,
            _ => {
                eprintln!("--columnar expects 'on' or 'off' (e.g. --columnar off)");
                std::process::exit(2);
            }
        };
    }
    true
}

/// Runs every job and returns their results in job order.
///
/// With `workers <= 1` (or fewer than two jobs) the jobs run inline on
/// the calling thread, in order — the sequential reference path. With
/// more workers, `min(workers, jobs)` scoped threads drain the job list;
/// the returned vector is indexed identically either way.
///
/// # Panics
///
/// If a job panics, the panic is propagated to the caller (after the
/// scope joins the remaining workers).
pub fn run_indexed<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    // Each job sits in its own slot; a worker takes the job at the index
    // it claimed and deposits the result in the matching result slot.
    let job_slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = job_slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = job();
                *result_slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    result_slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Stagger completion so later jobs often finish first.
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i * i
                }
            })
            .collect();
        let out = run_indexed(jobs, 8);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let make = || (0..40).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        assert_eq!(run_indexed(make(), 1), run_indexed(make(), 4));
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let base = vec![10, 20, 30];
        let jobs: Vec<_> = (0..base.len())
            .map(|i| {
                let base = &base;
                move || base[i] + 1
            })
            .collect();
        assert_eq!(run_indexed(jobs, 2), vec![11, 21, 31]);
    }

    #[test]
    fn zero_workers_degrades_to_sequential() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_indexed(jobs, 0), vec![0, 1, 2]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = Vec::new();
        assert!(run_indexed(jobs, 4).is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..2).map(|i| move || i).collect();
        assert_eq!(run_indexed(jobs, 16), vec![0, 1]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn parse_jobs_reads_both_flag_forms() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(&to_args(&["--quick", "--jobs", "4"])), 4);
        assert_eq!(parse_jobs(&to_args(&["--jobs=7", "--csv"])), 7);
        assert_eq!(parse_jobs(&to_args(&["--quick"])), default_jobs());
    }

    #[test]
    fn parse_profile_and_trace_read_their_flags() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_profile(&to_args(&["--quick", "--profile"])));
        assert!(!parse_profile(&to_args(&["--quick"])));
        assert_eq!(
            parse_trace(&to_args(&["--trace", "out.json"])).as_deref(),
            Some("out.json")
        );
        assert_eq!(
            parse_trace(&to_args(&["--trace=t.json", "--csv"])).as_deref(),
            Some("t.json")
        );
        assert_eq!(parse_trace(&to_args(&["--quick"])), None);
    }
}
