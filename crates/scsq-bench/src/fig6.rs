//! Figure 6: intra-BlueGene point-to-point streaming bandwidth vs MPI
//! stream buffer size, single vs double buffering.
//!
//! §3.1: node `a` (BlueGene node 1) generates a finite stream of 3 MB
//! arrays; node `b` (BlueGene node 0) counts them; only the count leaves
//! the BlueGene. The paper reports: optimum at a 1000-byte buffer,
//! degradation below (1 KB minimum torus message) and above (cache
//! misses), and double buffering paying off for large buffers.

use crate::{sweep, ExecMode, Scale, SweepPoint};
use scsq_core::{HardwareSpec, NodeId, RunOptions, Scsq, ScsqError};
use scsq_sim::Series;

/// The paper's point-to-point query (§3.1), parameterized on scale.
pub fn query(scale: Scale) -> String {
    format!(
        "select extract(b) \
         from sp a, sp b \
         where b=sp(streamof(count(extract(a))), 'bg', 0) \
         and a=sp(gen_array({bytes},{n}),'bg',1);",
        bytes = scale.array_bytes,
        n = scale.arrays
    )
}

/// Runs the Figure 6 sweep; returns one series per buffering mode, with
/// x = buffer size (bytes) and y = streaming bandwidth into node b
/// (MB/s). Uses the machine's available parallelism.
///
/// # Errors
///
/// Propagates query errors.
pub fn run(spec: &HardwareSpec, scale: Scale, buffers: &[u64]) -> Result<Vec<Series>, ScsqError> {
    run_with_jobs(
        spec,
        scale,
        buffers,
        crate::default_jobs(),
        ExecMode::default(),
    )
}

/// [`run`] with an explicit worker count (`jobs = 1` runs sequentially;
/// the result is bit-identical for every `jobs` value) and execution
/// mode (coalesced/fused and plain per-event runs are bit-identical too
/// — the mode only changes the wall-clock).
///
/// The query text does not depend on the swept knobs, so the whole
/// figure — both buffering modes, every buffer size, every repetition —
/// executes one prepared plan.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_with_jobs(
    spec: &HardwareSpec,
    scale: Scale,
    buffers: &[u64],
    jobs: usize,
    mode: ExecMode,
) -> Result<Vec<Series>, ScsqError> {
    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&query(scale))?;
    let labels = ["single buffering", "double buffering"];
    let mut points = Vec::with_capacity(2 * buffers.len());
    for (si, double) in [(0, false), (1, true)] {
        for &buffer in buffers {
            points.push(SweepPoint {
                series: si,
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    coalesce: mode.coalesce,
                    fuse: mode.fuse,
                    columnar: mode.columnar,
                    ..RunOptions::default()
                },
                spec: spec.clone(),
            });
        }
    }
    sweep(
        &labels,
        &points,
        scale,
        |r| r.bandwidth_into(NodeId::bg(0)) / 1e6,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_the_paper_shape() {
        let spec = HardwareSpec::lofar();
        let scale = Scale::quick();
        let buffers = [100u64, 1_000, 100_000, 1_000_000];
        let series = run(&spec, scale, &buffers).unwrap();
        let single = &series[0];
        let double = &series[1];

        // The optimum is at 1000 bytes for both modes (paper: "the
        // optimal buffer size is 1000 bytes for both single and double
        // buffering").
        assert_eq!(single.peak().unwrap().0, 1_000.0, "{single:?}");
        assert_eq!(double.peak().unwrap().0, 1_000.0, "{double:?}");

        // Sub-1K buffers collapse (1 KB torus minimum message).
        assert!(double.y_at(100.0).unwrap() < 0.3 * double.y_at(1_000.0).unwrap());

        // Large buffers degrade (cache misses) but far less than tiny
        // ones.
        let at_peak = double.y_at(1_000.0).unwrap();
        let at_1m = double.y_at(1_000_000.0).unwrap();
        assert!(at_1m < at_peak, "cache-miss drop-off missing");
        assert!(at_1m > 0.4 * at_peak, "drop-off too steep");

        // Double buffering pays off for large buffers.
        assert!(double.y_at(100_000.0).unwrap() > 1.1 * single.y_at(100_000.0).unwrap());
    }
}
