//! Client-side helpers for driving a running `scsqd`.
//!
//! [`run_script`] feeds an SCSQL script to a server connection with
//! exactly the `scsql` shell's line discipline — accumulate lines,
//! execute at each `;`, dispatch `.`-prefixed lines as meta-commands —
//! and renders the reply frames the way the shell prints local results:
//! rows and `-- …` summaries to stdout, errors as `error: …` to stderr.
//! A script served through here therefore produces a transcript that
//! diffs clean against `scsql <script>` run locally, which
//! `scripts/verify.sh`'s server smoke leg and `tests/server.rs` both
//! exploit.

use scsq_core::wire::{Client, Frame, FrameKind};
use std::io::{self, Write};

/// Feeds a whole script to the server, shell-style. Returns early (and
/// sends `BYE`) on a `.quit`/`.exit` line.
///
/// # Errors
///
/// I/O errors talking to the server or writing the transcript.
pub fn run_script(
    client: &mut Client,
    script: &str,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> io::Result<()> {
    let mut buffer = String::new();
    for line in script.lines() {
        if !feed_line(client, line, &mut buffer, out, err)? {
            return Ok(());
        }
    }
    Ok(())
}

/// Processes one input line with the shell's discipline; returns
/// `false` once the session said goodbye (`.quit`/`.exit`).
///
/// # Errors
///
/// See [`run_script`].
pub fn feed_line(
    client: &mut Client,
    line: &str,
    buffer: &mut String,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> io::Result<bool> {
    let trimmed = line.trim();
    if buffer.trim().is_empty() && trimmed.starts_with('.') {
        if trimmed == ".quit" || trimmed == ".exit" {
            client.bye()?;
            return Ok(false);
        }
        meta(client, trimmed, out, err)?;
        return Ok(true);
    }
    buffer.push_str(line);
    buffer.push('\n');
    while let Some(pos) = buffer.find(';') {
        let stmt: String = buffer[..=pos].to_string();
        buffer.replace_range(..=pos, "");
        let text = stmt.trim().to_string();
        if !text.is_empty() {
            statement(client, &text, out, err)?;
        }
    }
    Ok(true)
}

/// Sends one SCSQL statement and prints its reply frames like the local
/// shell would print the same statement's output.
///
/// # Errors
///
/// See [`run_script`].
pub fn statement(
    client: &mut Client,
    text: &str,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> io::Result<()> {
    for frame in client.statement(text)? {
        render(&frame, true, out, err)?;
    }
    Ok(())
}

/// Sends a meta-command. Success acknowledgements (`OK`) are
/// suppressed — the shell's option metas print nothing — while `INFO`
/// payloads (`.server` stats, `.explain` text) go to stdout verbatim
/// and errors to stderr.
///
/// # Errors
///
/// See [`run_script`].
pub fn meta(
    client: &mut Client,
    text: &str,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> io::Result<()> {
    for frame in client.statement(text)? {
        render(&frame, false, out, err)?;
    }
    Ok(())
}

/// Prints one frame. `summaries` controls whether `OK` payloads (the
/// `-- …` lines) appear — on for statements, off for meta-commands.
fn render(
    frame: &Frame,
    summaries: bool,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> io::Result<()> {
    match frame.kind {
        FrameKind::Row => writeln!(out, "{}", frame.payload),
        FrameKind::Ok => {
            if summaries {
                writeln!(out, "{}", frame.payload)
            } else {
                Ok(())
            }
        }
        FrameKind::Info | FrameKind::Metrics | FrameKind::Profile => {
            out.write_all(frame.payload.as_bytes())?;
            if !frame.payload.ends_with('\n') {
                writeln!(out)?;
            }
            Ok(())
        }
        FrameKind::Err => {
            if summaries {
                writeln!(err, "error: {}", frame.payload)
            } else {
                writeln!(err, "{}", frame.payload)
            }
        }
        // Client-direction frames never arrive here; HELLO is consumed
        // by the connect handshake.
        FrameKind::Hello | FrameKind::Stmt | FrameKind::Bye => Ok(()),
    }
}
