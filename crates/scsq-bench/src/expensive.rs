//! Expensive stream functions: the other §5 open item.
//!
//! "It is also important to analyze the performance of continuous
//! queries involving expensive functions." The paper's own example of an
//! expensive function is the FFT, and its `radix2` query function shows
//! how SCSQL *parallelizes* one. This study quantifies when that
//! parallelization pays: a single stream process computing `fft` over a
//! stream is compared with the radix2 plan that decimates the stream and
//! runs two half-size FFTs on two compute nodes in parallel.
//!
//! Expected shape: for small arrays the distributed plan loses, for
//! large arrays it wins, with break-even around 1–2 MB arrays. The win
//! is bounded by the radix2 topology itself: `fft(odd(extract(c)))`
//! means *every* half-FFT process subscribes to the **full** source
//! stream and decimates locally, so the source pays double injection —
//! distribution only profits once the O(n log n) FFT compute outgrows
//! that doubled communication.

use crate::{mean_metric, ExecMode, Scale};
use scsq_core::{HardwareSpec, RunOptions, ScsqError};
use scsq_sim::Series;

/// Single-node plan: one SP computes and counts the full FFTs; only the
/// count leaves the BlueGene (so outbound I/O does not mask the
/// computation, the same trick as the paper's §3 queries).
pub fn single_query(bytes: u64, count: u64) -> String {
    format!(
        "select extract(f) from sp src, sp f \
         where f=sp(streamof(count(fft(extract(src)))), 'bg', 1) \
         and src=sp(gen_array({bytes},{count}),'bg',0);"
    )
}

/// Distributed plan: the paper's radix2 shape — each half-FFT SP
/// subscribes to the full source stream and decimates locally (that is
/// what `fft(odd(extract(c)))` means), then a fourth SP combines and
/// counts.
pub fn radix2_query(bytes: u64, count: u64) -> String {
    format!(
        "select extract(d) from sp a, sp b, sp c, sp d \
         where d=sp(streamof(count(radixcombine(merge({{a,b}})))), 'bg', 5) \
         and a=sp(fft(odd(extract(c))), 'bg', 1) \
         and b=sp(fft(even(extract(c))), 'bg', 4) \
         and c=sp(gen_array({bytes},{count}),'bg',0);"
    )
}

/// Sweeps the array size; returns two series (x = array bytes,
/// y = query time in milliseconds) plus nothing else — smaller is
/// better.
///
/// # Errors
///
/// Propagates query errors.
pub fn run(spec: &HardwareSpec, scale: Scale, sizes: &[u64]) -> Result<Vec<Series>, ScsqError> {
    run_with_mode(spec, scale, sizes, ExecMode::default())
}

/// [`run`] with an execution mode (all modes are bit-identical; the
/// switches only change the wall-clock).
///
/// # Errors
///
/// Propagates query errors.
pub fn run_with_mode(
    spec: &HardwareSpec,
    scale: Scale,
    sizes: &[u64],
    mode: ExecMode,
) -> Result<Vec<Series>, ScsqError> {
    let options = RunOptions {
        mpi_buffer: 100_000,
        coalesce: mode.coalesce,
        fuse: mode.fuse,
        columnar: mode.columnar,
        ..RunOptions::default()
    };
    let mut single = Series::new("single-node fft");
    let mut distributed = Series::new("distributed radix2");
    for &bytes in sizes {
        let q1 = single_query(bytes, scale.arrays);
        let q2 = radix2_query(bytes, scale.arrays);
        let t1 = mean_metric(spec, &options, scale, &q1, &[], |r| {
            r.total_time().as_secs_f64() * 1e3
        })?;
        let t2 = mean_metric(spec, &options, scale, &q2, &[], |r| {
            r.total_time().as_secs_f64() * 1e3
        })?;
        single.push_with_dev(bytes as f64, t1.mean, t1.std_dev);
        distributed.push_with_dev(bytes as f64, t2.mean, t2.std_dev);
    }
    Ok(vec![single, distributed])
}

/// The speedup of the distributed plan at each swept size (>1 means
/// radix2 wins).
pub fn speedups(series: &[Series]) -> Vec<(f64, f64)> {
    series[0]
        .points()
        .iter()
        .zip(series[1].points())
        .map(|((x, t1), (_, t2))| (*x, t1 / t2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_pays_for_large_arrays_only() {
        let spec = HardwareSpec::lofar();
        let scale = Scale {
            arrays: 60,
            ..Scale::quick()
        };
        let series = run(&spec, scale, &[10_000, 3_000_000]).unwrap();
        let s = speedups(&series);
        let (small, large) = (s[0].1, s[1].1);
        assert!(
            small < 0.85,
            "radix2 must lose for small arrays (double injection): {small:.2}"
        );
        assert!(
            large > 1.05,
            "radix2 must win for 3 MB arrays: speedup {large:.2}"
        );
        assert!(
            large > small,
            "speedup must grow with array size: {small:.2} -> {large:.2}"
        );
    }
}
