//! Regenerates paper Figure 15: BlueGene inbound streaming bandwidth of
//! Queries 1–6 vs the number of back-end generator RPs.
//!
//! Usage: `fig15_inbound [--quick] [--csv] [--jobs N] [--coalesce on|off] [--fuse on|off] [--columnar on|off] [--metrics PATH] [--profile] [--trace PATH]`
//!
//! `--profile` prints the explain-analyze per-stage table of one
//! representative run (Query 5 at n=4, the paper's peak); `--trace
//! PATH` writes that run's spans in Chrome trace-event format.

use scsq_bench::{
    fig15, parse_coalesce, parse_columnar, parse_fuse, parse_jobs, parse_metrics, parse_profile,
    parse_trace, print_figure, profile_representative, series_to_csv, write_hub_metrics, Scale,
};
use scsq_core::{HardwareSpec, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let jobs = parse_jobs(&args);
    let metrics = parse_metrics(&args);
    let profile = parse_profile(&args);
    let trace = parse_trace(&args);
    if metrics.is_some() {
        scsq_core::metrics::hub().enable(true);
    }
    let mode = scsq_bench::ExecMode {
        coalesce: parse_coalesce(&args),
        fuse: parse_fuse(&args),
        columnar: parse_columnar(&args),
    };
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let ns: Vec<u32> = (1..=8).collect();
    let spec = HardwareSpec::lofar();
    let series = fig15::run_with_jobs(&spec, scale, &ns, jobs, mode).unwrap_or_else(|e| {
        eprintln!("fig15 failed: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &metrics {
        write_hub_metrics(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if profile || trace.is_some() {
        profile_representative(
            &spec,
            &fig15::query(5, scale),
            &[("n", Value::Integer(4))],
            mode,
            profile,
            trace.as_deref(),
        );
    }
    if csv {
        print!("{}", series_to_csv(&series));
    } else {
        print!(
            "{}",
            print_figure(
                "Figure 15: BG inbound streaming bandwidth, Queries 1-6",
                "n",
                "total inbound streaming bandwidth (Mbps)",
                &series,
            )
        );
        let q5 = &series[4];
        if let Some((x, y)) = q5.peak() {
            println!("# Query 5 peaks at {y:.0} Mbps (n={x:.0}); paper: ~920 Mbps");
        }
        if let (Some(a), Some(b)) = (q5.y_at(4.0), q5.y_at(5.0)) {
            println!(
                "# Query 5 dip at n=5: {a:.0} -> {b:.0} Mbps (paper: significant dip, 4 I/O nodes)"
            );
        }
    }
}
