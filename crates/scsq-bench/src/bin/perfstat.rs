//! Measures the parallel sweep executor against the sequential path on
//! a fixed workload (the Figure 6 and Figure 15 sweeps at quick scale),
//! verifies the two produce bit-identical series, and emits a
//! machine-readable JSON report.
//!
//! Usage: `perfstat [--jobs N] [--out PATH]`
//!
//! `--jobs` sets the parallel worker count (default: available
//! parallelism); the sequential reference always runs at 1. `--out`
//! chooses where the JSON lands (default `BENCH_sweep.json`).

use scsq_bench::{buffer_sweep, default_jobs, fig15, fig6, parse_jobs, sweep, Scale, SweepPoint};
use scsq_core::{HardwareSpec, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::Series;
use std::time::Instant;

/// The fixed workload: every Figure 6 buffer point plus the Figure 15
/// n-sweep, at quick scale.
fn workload(jobs: usize) -> Result<Vec<Series>, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();
    let mut series = fig6::run_with_jobs(&spec, scale, &buffer_sweep(), jobs)?;
    series.extend(fig15::run_with_jobs(&spec, scale, &[1, 2, 3, 4], jobs)?);
    Ok(series)
}

/// Counts the total simulated events the workload executes (identical
/// for every `jobs` value — the simulations are deterministic), by
/// re-running the same grid with an event-count metric.
fn workload_events(jobs: usize) -> Result<f64, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();
    let mut total = 0.0;

    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&fig6::query(scale))?;
    let mut points = Vec::new();
    for double in [false, true] {
        for &buffer in &buffer_sweep() {
            points.push(SweepPoint {
                series: 0,
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    ..RunOptions::default()
                },
                spec: spec.clone(),
            });
        }
    }
    let counts = sweep(&["fig6"], &points, scale, |r| r.stats().events as f64, jobs)?;
    total += counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64;

    let mut points = Vec::new();
    for q in 1..=6u8 {
        let text = fig15::query(q, scale);
        for n in 1..=4u32 {
            let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(n)))])?;
            points.push(SweepPoint {
                series: 0,
                x: f64::from(n),
                plan,
                options: RunOptions::default(),
                spec: spec.clone(),
            });
        }
    }
    let counts = sweep(
        &["fig15"],
        &points,
        scale,
        |r| r.stats().events as f64,
        jobs,
    )?;
    total += counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64;

    Ok(total)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = parse_jobs(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let fail = |e: ScsqError| -> ! {
        eprintln!("perfstat workload failed: {e}");
        std::process::exit(1);
    };

    // Warm-up run so neither timed pass pays first-touch costs.
    workload(jobs).unwrap_or_else(|e| fail(e));

    let t0 = Instant::now();
    let sequential = workload(1).unwrap_or_else(|e| fail(e));
    let seq_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = workload(jobs).unwrap_or_else(|e| fail(e));
    let par_s = t1.elapsed().as_secs_f64();

    let identical = sequential == parallel;
    if !identical {
        eprintln!("ERROR: parallel series differ from the sequential reference");
    }

    let events = workload_events(jobs).unwrap_or_else(|e| fail(e));
    let speedup = seq_s / par_s;

    let json = format!(
        "{{\n  \"workload\": \"fig6 buffer sweep + fig15 n-sweep, quick scale\",\n  \
         \"host_parallelism\": {host},\n  \
         \"jobs\": {jobs},\n  \
         \"series_identical\": {identical},\n  \
         \"total_simulated_events\": {events},\n  \
         \"sequential\": {{ \"wall_s\": {seq_s:.4}, \"events_per_s\": {seq_eps:.0} }},\n  \
         \"parallel\": {{ \"wall_s\": {par_s:.4}, \"events_per_s\": {par_eps:.0} }},\n  \
         \"speedup\": {speedup:.3}\n}}\n",
        host = default_jobs(),
        seq_eps = events / seq_s,
        par_eps = events / par_s,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");
    if !identical {
        std::process::exit(1);
    }
}
