//! Measures the event-kernel execution tiers (train-coalesced, fused
//! per-event, parallel sweep) against the sequential per-event baseline
//! on a fixed workload (the Figure 6 buffer sweep plus the Figure 15
//! n-sweep), verifies that all paths produce bit-identical series, and
//! emits a machine-readable JSON report.
//!
//! Usage: `perfstat [--jobs N] [--out PATH] [--metrics PATH]`
//!
//! `--jobs` sets the parallel worker count (default: available
//! parallelism); the sequential references always run at 1. `--out`
//! chooses where the JSON lands (default `BENCH_sweep.json`).
//! `--metrics` additionally writes the aggregated metrics-hub snapshot;
//! the hub stays enabled only for the warm-up pass so the timed passes
//! are never perturbed (while disabled, recording is one atomic load).
//!
//! Timed passes:
//!
//! 1. **sequential, per-event** — one thread, coalescing off: the
//!    baseline. The workload is sized so this leg runs for at least
//!    two seconds, keeping the timings out of noise territory.
//! 2. **sequential, coalesced** — one thread, coalescing on: isolates
//!    the kernel's train-coalescing gain (`coalesce_speedup`).
//! 3. **parallel, coalesced** — `--jobs` threads: adds the sweep
//!    executor's gain (`parallel_speedup`, relative to pass 2).
//!    On a single-core host (or `--jobs 1`) there is no parallelism to
//!    measure, so the report records `parallel_speedup: null` with a
//!    `"single_core_host"` note instead of a misleading ~1.0 ratio.
//! 4. **jittered, per-event** — service times carry multiplicative
//!    jitter, which the coalescing probes hash as opaque state, so no
//!    two periods digest equal and trains provably cannot form. Every
//!    element walks the fused per-event path; its throughput is the
//!    `per_event_events_per_s` headline. A coalescing-enabled control
//!    run must produce byte-identical series (proof that coalescing
//!    never fired).
//! 5. **columnar batch** — a pipeline (one integer generator, a
//!    take-then-sum receiver) at an element-dense scale: 9-byte
//!    integers, so one buffer period delivers thousands of elements in
//!    a single batch, jittered so trains cannot form. Three legs: the
//!    interpreted per-element chain (the byte-identity reference), the
//!    fused per-element scalar path, and the fused columnar batch path.
//!    `columnar_speedup` is interpreted-wall over columnar-wall; all
//!    three legs must produce byte-identical series, and the report
//!    fails (exit 1) if they do not or if the ratio drops below 1.0.

use scsq_bench::{
    buffer_sweep, fig15, fig6, parse_jobs, parse_metrics, sweep, write_hub_metrics, ExecMode,
    Scale, SweepPoint,
};
use scsq_core::{HardwareSpec, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::Series;
use std::time::Instant;

/// Service-time jitter amplitude for the per-event pass — large enough
/// that consecutive periods never digest equal, small enough that the
/// simulated schedule stays realistic.
const JITTER: f64 = 0.05;

/// The workload scale: paper-size (3 MB) arrays — the regime the
/// coalescer targets, where a single array spans thousands of buffer
/// periods — and enough of them that the sequential per-event pass
/// stays above two seconds of wall clock.
fn perf_scale() -> Scale {
    Scale {
        array_bytes: 3_000_000,
        arrays: 60,
        ..Scale::quick()
    }
}

/// The fixed workload: every Figure 6 buffer point plus the Figure 15
/// n-sweep.
fn workload(jobs: usize, mode: ExecMode) -> Result<Vec<Series>, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale();
    let mut series = fig6::run_with_jobs(&spec, scale, &buffer_sweep(), jobs, mode)?;
    series.extend(fig15::run_with_jobs(
        &spec,
        scale,
        &[1, 2, 3, 4],
        jobs,
        mode,
    )?);
    Ok(series)
}

/// The Figure 6 buffer grid with jittered service times. Coalescing is
/// left to the caller: with jitter active the runtime's state probes
/// hash the generator, so trains can never form and both settings must
/// produce identical output.
fn jittered_points(
    scsq: &mut Scsq,
    spec: &HardwareSpec,
    scale: Scale,
    coalesce: bool,
) -> Result<Vec<SweepPoint>, ScsqError> {
    let plan = scsq.prepare(&fig6::query(scale))?;
    let mut points = Vec::new();
    for double in [false, true] {
        for &buffer in &buffer_sweep() {
            points.push(SweepPoint {
                series: 0,
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    service_jitter: JITTER,
                    coalesce,
                    ..RunOptions::default()
                },
                spec: spec.clone(),
            });
        }
    }
    Ok(points)
}

/// Runs the jittered grid and returns its bandwidth series.
fn jittered_workload(jobs: usize, coalesce: bool) -> Result<Vec<Series>, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale();
    let mut scsq = Scsq::with_spec(spec.clone());
    let points = jittered_points(&mut scsq, &spec, scale, coalesce)?;
    sweep(
        &["fig6 jittered"],
        &points,
        scale,
        |r| r.bandwidth_into(scsq_core::NodeId::bg(0)) / 1e6,
        jobs,
    )
}

/// The columnar-pass scale: `arrays` is the integer-stream length (the
/// query below generates 9-byte integers, not arrays) — enough elements
/// that the scalar legs stay well clear of timer noise.
fn columnar_scale(arrays: u64) -> Scale {
    Scale {
        array_bytes: 9,
        arrays,
        ..Scale::quick()
    }
}

/// The columnar-pass query: one integer generator streaming into a
/// take-then-sum receiver whose final lands at a client. `take`
/// exercises the columnar view-slicing kernel where the interpreted
/// chain pays one more per-element dispatch; `sum` makes every
/// delivered element carry real aggregation work (a numeric fold the
/// column kernels vectorize) rather than a bare counter bump. Integers
/// marshal to 9 bytes, so one MPI buffer delivers thousands of
/// elements per batch. A single receiver (rather than a wide fan-out)
/// keeps the shared transport cost — enqueue, packing, delivery, paid
/// identically by every leg — to one channel's worth per element, so
/// the pass isolates what it is meant to measure: the per-element
/// chain-dispatch cost the columnar kernels replace. It also keeps the
/// per-leg footprint small enough that walls are allocator-stable run
/// to run.
fn columnar_query(scale: Scale) -> String {
    let receivers = 1;
    let merge = (1..=receivers)
        .map(|i| format!("b{i}"))
        .collect::<Vec<_>>()
        .join(",");
    let from = (1..=receivers)
        .map(|i| format!("sp b{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let taps = (1..=receivers)
        .map(|i| {
            format!(
                "and b{i}=sp(streamof(sum(take(extract(a), {n}))), 'bg', {node}) ",
                n = scale.arrays,
                node = i + 1
            )
        })
        .collect::<String>();
    format!(
        "select extract(c) \
         from sp a, {from}, sp c \
         where c=sp(streamof(sum(merge({{{merge}}}))), 'bg', 0) \
         {taps}\
         and a=sp(streamof(iota(1,{n})),'bg',1);",
        n = scale.arrays
    )
}

/// Prepares the take-sum pipeline at the element-dense scale for one
/// chain-execution tier: the interpreted per-element reference
/// (`fuse: false`), the fused per-element scalar path, or the fused
/// columnar batch path. Preparation (spec construction, parse, bind,
/// placement) happens here, outside the timed region — it is identical
/// for every tier, and on sub-second legs a shared fixed cost inside
/// the timer would compress the ratio between them.
fn columnar_points(
    arrays: u64,
    fuse: bool,
    columnar: bool,
) -> Result<(Scale, Vec<SweepPoint>), ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = columnar_scale(arrays);
    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&columnar_query(scale))?;
    let buffer = 50_000u64;
    let points = vec![SweepPoint {
        series: 0,
        x: buffer as f64,
        plan,
        options: RunOptions {
            mpi_buffer: buffer,
            service_jitter: JITTER,
            coalesce: false,
            fuse,
            columnar,
            ..RunOptions::default()
        },
        spec,
    }];
    Ok((scale, points))
}

/// Runs a prepared columnar-pass tier (jittered service times, so
/// trains provably cannot form and every delivery walks the per-event
/// path).
fn columnar_run(scale: Scale, points: &[SweepPoint]) -> Result<Vec<Series>, ScsqError> {
    sweep(
        &["take-sum columnar"],
        points,
        scale,
        // The query's actual answer (the pipeline's summed total): any
        // miscount by a column kernel shifts it, which the cross-tier
        // equality check below then catches.
        |r| {
            r.values()
                .iter()
                .map(|v| v.as_real().unwrap_or(f64::NAN))
                .sum::<f64>()
        },
        1,
    )
}

/// Counts the simulated events the jittered grid executes, by re-running
/// it with an event-count metric.
fn jittered_events(jobs: usize) -> Result<f64, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale();
    let mut scsq = Scsq::with_spec(spec.clone());
    let points = jittered_points(&mut scsq, &spec, scale, false)?;
    let counts = sweep(
        &["fig6 jittered"],
        &points,
        scale,
        |r| r.stats().events as f64,
        jobs,
    )?;
    Ok(counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64)
}

/// Counts the total simulated events the workload executes (identical
/// for every `jobs` value and both coalescing modes — the coalescer
/// counts analytically skipped events as executed), by re-running the
/// same grid with an event-count metric.
fn workload_events(jobs: usize) -> Result<f64, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale();
    let mut total = 0.0;

    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&fig6::query(scale))?;
    let mut points = Vec::new();
    for double in [false, true] {
        for &buffer in &buffer_sweep() {
            points.push(SweepPoint {
                series: 0,
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    ..RunOptions::default()
                },
                spec: spec.clone(),
            });
        }
    }
    let counts = sweep(&["fig6"], &points, scale, |r| r.stats().events as f64, jobs)?;
    total += counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64;

    let mut points = Vec::new();
    for q in 1..=6u8 {
        let text = fig15::query(q, scale);
        for n in 1..=4u32 {
            let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(n)))])?;
            points.push(SweepPoint {
                series: 0,
                x: f64::from(n),
                plan,
                options: RunOptions::default(),
                spec: spec.clone(),
            });
        }
    }
    let counts = sweep(
        &["fig15"],
        &points,
        scale,
        |r| r.stats().events as f64,
        jobs,
    )?;
    total += counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64;

    Ok(total)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = parse_jobs(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let fail = |e: ScsqError| -> ! {
        eprintln!("perfstat workload failed: {e}");
        std::process::exit(1);
    };

    // Warm-up run so no timed pass pays first-touch costs. The metrics
    // hub records this pass only: it is disabled again before any timer
    // starts, so the timed passes pay exactly one relaxed atomic load
    // per query.
    let metrics = parse_metrics(&args);
    if metrics.is_some() {
        scsq_core::metrics::hub().enable(true);
    }
    workload(jobs, ExecMode::default()).unwrap_or_else(|e| fail(e));
    if let Some(path) = &metrics {
        scsq_core::metrics::hub().enable(false);
        write_hub_metrics(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }

    let per_event_mode = ExecMode {
        coalesce: false,
        ..ExecMode::default()
    };
    let t0 = Instant::now();
    let per_event = workload(1, per_event_mode).unwrap_or_else(|e| fail(e));
    let per_event_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let coalesced = workload(1, ExecMode::default()).unwrap_or_else(|e| fail(e));
    let coalesced_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let parallel = workload(jobs, ExecMode::default()).unwrap_or_else(|e| fail(e));
    let parallel_s = t2.elapsed().as_secs_f64();

    // The jittered pass: every element takes the fused per-event path.
    let t3 = Instant::now();
    let jittered = jittered_workload(1, false).unwrap_or_else(|e| fail(e));
    let jittered_s = t3.elapsed().as_secs_f64();
    // Control: coalescing enabled must change nothing, because jitter
    // makes every period digest unique.
    let jittered_control = jittered_workload(1, true).unwrap_or_else(|e| fail(e));

    // The columnar pass: element-dense batches through the interpreted
    // per-element reference, the fused per-element scalar path, and the
    // fused columnar batch path. A short untimed run first, so the
    // first timed leg does not absorb the pass's first-touch costs and
    // skew the ratios. Each leg runs three times and reports its
    // fastest wall — the run least perturbed by the host — because a
    // single scheduler hiccup on a sub-second leg can swing a ratio by
    // tens of percent; the simulation itself is deterministic, so every
    // repetition must produce the same series.
    const COLUMNAR_ARRAYS: u64 = 1_000_000;
    const COLUMNAR_REPS: usize = 3;
    {
        let (scale, points) =
            columnar_points(COLUMNAR_ARRAYS / 10, true, true).unwrap_or_else(|e| fail(e));
        columnar_run(scale, &points).unwrap_or_else(|e| fail(e));
    }
    let timed_leg = |fuse: bool, columnar: bool| {
        let (scale, points) =
            columnar_points(COLUMNAR_ARRAYS, fuse, columnar).unwrap_or_else(|e| fail(e));
        let mut best: Option<(f64, Vec<Series>)> = None;
        for _ in 0..COLUMNAR_REPS {
            let t = Instant::now();
            let series = columnar_run(scale, &points).unwrap_or_else(|e| fail(e));
            let wall = t.elapsed().as_secs_f64();
            match &best {
                Some((_, prev)) if *prev != series => {
                    eprintln!(
                        "perfstat workload failed: columnar leg (fuse={fuse}, \
                         columnar={columnar}) is not deterministic across repetitions"
                    );
                    std::process::exit(1);
                }
                Some((w, _)) if *w <= wall => {}
                _ => best = Some((wall, series)),
            }
        }
        best.expect("at least one repetition ran")
    };
    let (columnar_ref_s, columnar_ref) = timed_leg(false, false);
    let (columnar_scalar_s, columnar_scalar) = timed_leg(true, false);
    let (columnar_on_s, columnar_on) = timed_leg(true, true);
    // The headline ratio is against the interpreted per-element chain —
    // the byte-identity reference the columnar path is proven against;
    // the fused-scalar wall is reported so the fusion and columnar
    // contributions stay separable.
    let columnar_speedup = columnar_ref_s / columnar_on_s;

    let identical = per_event == coalesced
        && coalesced == parallel
        && jittered == jittered_control
        && columnar_ref == columnar_scalar
        && columnar_scalar == columnar_on;
    if !identical {
        eprintln!(
            "ERROR: coalesced/parallel/jittered/columnar series differ from their references"
        );
    }
    if columnar_speedup < 1.0 {
        eprintln!(
            "ERROR: columnar batch pass is a slowdown ({columnar_ref_s:.3}s interpreted vs \
             {columnar_on_s:.3}s columnar)"
        );
    }

    let events = workload_events(jobs).unwrap_or_else(|e| fail(e));
    let jit_events = jittered_events(jobs).unwrap_or_else(|e| fail(e));
    let coalesce_speedup = per_event_s / coalesced_s;

    // The true machine parallelism, straight from the OS (the --jobs
    // flag may differ).
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // On a single-core host (or an explicit --jobs 1) pass 3 measures
    // thread-pool overhead, not parallelism — report null, not a bogus
    // ratio.
    let (parallel_speedup, parallel_note) = if host > 1 && jobs > 1 {
        (format!("{:.3}", coalesced_s / parallel_s), String::new())
    } else {
        (
            "null".to_string(),
            ",\n  \"parallel_note\": \"single_core_host\"".to_string(),
        )
    };

    let per_event_eps = jit_events / jittered_s;
    let json = format!(
        "{{\n  \"workload\": \"fig6 buffer sweep + fig15 n-sweep, 3 MB arrays x60\",\n  \
         \"host_parallelism\": {host},\n  \
         \"jobs\": {jobs},\n  \
         \"series_identical\": {identical},\n  \
         \"total_simulated_events\": {events},\n  \
         \"sequential_per_event\": {{ \"wall_s\": {per_event_s:.4}, \"events_per_s\": {pe_eps:.0} }},\n  \
         \"sequential_coalesced\": {{ \"wall_s\": {coalesced_s:.4}, \"events_per_s\": {co_eps:.0} }},\n  \
         \"parallel_coalesced\": {{ \"wall_s\": {parallel_s:.4}, \"events_per_s\": {pa_eps:.0} }},\n  \
         \"jittered_per_event\": {{ \"wall_s\": {jittered_s:.4}, \"events\": {jit_events}, \"events_per_s\": {per_event_eps:.0} }},\n  \
         \"columnar_batch\": {{ \"workload\": \"take-sum pipeline jittered, iota integers x{COLUMNAR_ARRAYS}\", \"wall_interpreted_s\": {columnar_ref_s:.4}, \"wall_fused_scalar_s\": {columnar_scalar_s:.4}, \"wall_columnar_s\": {columnar_on_s:.4} }},\n  \
         \"columnar_speedup\": {columnar_speedup:.3},\n  \
         \"per_event_events_per_s\": {per_event_eps:.0},\n  \
         \"coalesce_speedup\": {coalesce_speedup:.3},\n  \
         \"parallel_speedup\": {parallel_speedup}{parallel_note}\n}}\n",
        pe_eps = events / per_event_s,
        co_eps = events / coalesced_s,
        pa_eps = events / parallel_s,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");
    if !identical || columnar_speedup < 1.0 {
        std::process::exit(1);
    }
}
