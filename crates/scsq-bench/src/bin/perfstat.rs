//! Measures the event-kernel execution tiers (train-coalesced, fused
//! per-event, parallel sweep) against the sequential per-event baseline
//! on a fixed workload (the Figure 6 buffer sweep plus the Figure 15
//! n-sweep), verifies that all paths produce bit-identical series, and
//! emits a machine-readable JSON report.
//!
//! Usage: `perfstat [--jobs N] [--out PATH] [--metrics PATH] [--smoke]`
//!
//! `--jobs` sets the parallel worker count (default: available
//! parallelism); the sequential references always run at 1. `--out`
//! chooses where the JSON lands (default `BENCH_sweep.json`).
//! `--metrics` additionally writes the aggregated metrics-hub snapshot.
//! The hub is enabled **for the warm-up pass only** — the snapshot's
//! counters cover exactly that pass, recorded as `"pass": "warmup"` in
//! the JSON — so the timed passes are never perturbed (while disabled,
//! recording is one atomic load).
//! `--smoke` shrinks every workload (fewer arrays, shorter element
//! streams) so the full pass structure — including every identity and
//! speedup gate — finishes in CI time; the report records the mode.
//!
//! Timed passes:
//!
//! 1. **sequential, per-event** — one thread, coalescing off: the
//!    baseline. The workload is sized so this leg runs for at least
//!    two seconds, keeping the timings out of noise territory.
//! 2. **sequential, coalesced** — one thread, coalescing on: isolates
//!    the kernel's train-coalescing gain (`coalesce_speedup`).
//! 3. **parallel, coalesced** — `--jobs` threads: adds the sweep
//!    executor's gain (`parallel_speedup`, relative to pass 2).
//!    On a single-core host (or `--jobs 1`) there is no parallelism to
//!    measure, so the report records `parallel_speedup: null` with a
//!    `"single_core_host"` note instead of a misleading ~1.0 ratio.
//! 4. **jittered, per-event** — service times carry multiplicative
//!    jitter, which the coalescing probes hash as opaque state, so no
//!    two periods digest equal and trains provably cannot form. Every
//!    element walks the fused per-event path; its throughput is the
//!    `per_event_events_per_s` headline. A coalescing-enabled control
//!    run must produce byte-identical series (proof that coalescing
//!    never fired).
//! 5. **columnar batch** — a pipeline (one integer generator, a
//!    take-then-sum receiver) at an element-dense scale: 9-byte
//!    integers, so one buffer period delivers thousands of elements in
//!    a single batch, jittered so trains cannot form. Three legs: the
//!    interpreted per-element chain (the byte-identity reference), the
//!    fused per-element scalar path, and the fused columnar batch path.
//!    `columnar_speedup` is interpreted-wall over columnar-wall; all
//!    three legs must produce byte-identical series, and the report
//!    fails (exit 1) if they do not or if the ratio drops below 1.3.
//! 6. **filter batch** — the same three legs over a filter-heavy
//!    pipeline (`arith → filter → cmp → count` on a million jittered
//!    integers), where the columnar path runs selection-vector kernels
//!    instead of per-element dispatch. `filter_speedup` must stay
//!    ≥ 1.9 against the interpreted reference.
//! 7. **relay batch** — a *two-SP* pipeline: the upstream receiver
//!    re-emits (`arith('*',3) → filter('>', 3n/2)`) into a downstream
//!    `sum` fold. With the columnar pass on, the upstream SP relays
//!    survivor rows as shared column handles across the stream channel
//!    (one decomposition at the source, zero-copy hand-off at the far
//!    end). `relay_speedup` is gated ≥ 1.3 against the **fused
//!    scalar** leg — fusion already removed interpretation overhead, so
//!    the ratio isolates what the cross-SP relay adds.
//! 8. **observability overhead** — pass 4's jittered grid again, with
//!    the whole observability layer enabled: metrics-hub recording, the
//!    flight-recorder span gate, per-channel latency histograms
//!    (`observe_latency`) and explain-analyze stage tallies
//!    (`profile`). The observed leg keeps the fastest of three walls
//!    (a single-sample ratio on a sub-second leg would flake on
//!    scheduler noise); the gates-off baseline is the fastest of pass
//!    4's wall and two fresh gates-off repetitions, so both sides of
//!    the ratio are minima. `observability_overhead` must stay below
//!    2%, and every observed series must stay byte-identical to pass
//!    4's — observability may never change results. With everything
//!    off there is no separate cost to measure: each gate is one
//!    relaxed atomic load, and the baseline legs pay it.
//!
//! The batch passes additionally take one untimed *accounting* run per
//! leg and record the query answer, completion time, RNG jitter-draw
//! count and columnar batch count in the report. All three legs of a
//! pass must agree on answer, completion time and draw count (the
//! determinism contract), and only the columnar leg may absorb batches;
//! any disagreement fails the report.

use scsq_bench::{
    buffer_sweep, fig15, fig6, parse_jobs, parse_metrics, sweep, write_hub_metrics_tagged,
    ExecMode, Scale, SweepPoint,
};
use scsq_core::{HardwareSpec, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::Series;
use std::time::Instant;

/// Service-time jitter amplitude for the per-event pass — large enough
/// that consecutive periods never digest equal, small enough that the
/// simulated schedule stays realistic.
const JITTER: f64 = 0.05;

/// The workload scale: paper-size (3 MB) arrays — the regime the
/// coalescer targets, where a single array spans thousands of buffer
/// periods — and enough of them that the sequential per-event pass
/// stays above two seconds of wall clock. `--smoke` keeps the array
/// size (the coalescing regime) but cuts the count so CI finishes the
/// whole report in well under a minute.
fn perf_scale(smoke: bool) -> Scale {
    Scale {
        array_bytes: 3_000_000,
        arrays: if smoke { 8 } else { 60 },
        ..Scale::quick()
    }
}

/// The fixed workload: every Figure 6 buffer point plus the Figure 15
/// n-sweep.
fn workload(jobs: usize, mode: ExecMode, smoke: bool) -> Result<Vec<Series>, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale(smoke);
    let mut series = fig6::run_with_jobs(&spec, scale, &buffer_sweep(), jobs, mode)?;
    series.extend(fig15::run_with_jobs(
        &spec,
        scale,
        &[1, 2, 3, 4],
        jobs,
        mode,
    )?);
    Ok(series)
}

/// The Figure 6 buffer grid with jittered service times. Coalescing is
/// left to the caller: with jitter active the runtime's state probes
/// hash the generator, so trains can never form and both settings must
/// produce identical output. `observe` additionally switches on the
/// result-affecting half of the observability layer — per-channel
/// latency histograms and explain-analyze stage tallies — for the
/// overhead pass.
fn jittered_points(
    scsq: &mut Scsq,
    spec: &HardwareSpec,
    scale: Scale,
    coalesce: bool,
    observe: bool,
) -> Result<Vec<SweepPoint>, ScsqError> {
    let plan = scsq.prepare(&fig6::query(scale))?;
    let mut points = Vec::new();
    for double in [false, true] {
        for &buffer in &buffer_sweep() {
            points.push(SweepPoint {
                series: 0,
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    service_jitter: JITTER,
                    coalesce,
                    observe_latency: observe,
                    profile: observe,
                    ..RunOptions::default()
                },
                spec: spec.clone(),
            });
        }
    }
    Ok(points)
}

/// Runs the jittered grid and returns its bandwidth series.
fn jittered_workload(
    jobs: usize,
    coalesce: bool,
    smoke: bool,
    observe: bool,
) -> Result<Vec<Series>, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale(smoke);
    let mut scsq = Scsq::with_spec(spec.clone());
    let points = jittered_points(&mut scsq, &spec, scale, coalesce, observe)?;
    sweep(
        &["fig6 jittered"],
        &points,
        scale,
        |r| r.bandwidth_into(scsq_core::NodeId::bg(0)) / 1e6,
        jobs,
    )
}

/// The columnar-pass scale: `arrays` is the integer-stream length (the
/// query below generates 9-byte integers, not arrays) — enough elements
/// that the scalar legs stay well clear of timer noise.
fn columnar_scale(arrays: u64) -> Scale {
    Scale {
        array_bytes: 9,
        arrays,
        ..Scale::quick()
    }
}

/// The columnar-pass query: one integer generator streaming into a
/// take-then-sum receiver whose final lands at a client. `take`
/// exercises the columnar view-slicing kernel where the interpreted
/// chain pays one more per-element dispatch; `sum` makes every
/// delivered element carry real aggregation work (a numeric fold the
/// column kernels vectorize) rather than a bare counter bump. Integers
/// marshal to 9 bytes, so one MPI buffer delivers thousands of
/// elements per batch. A single receiver (rather than a wide fan-out)
/// keeps the shared transport cost — enqueue, packing, delivery, paid
/// identically by every leg — to one channel's worth per element, so
/// the pass isolates what it is meant to measure: the per-element
/// chain-dispatch cost the columnar kernels replace. It also keeps the
/// per-leg footprint small enough that walls are allocator-stable run
/// to run.
fn columnar_query(scale: Scale) -> String {
    let receivers = 1;
    let merge = (1..=receivers)
        .map(|i| format!("b{i}"))
        .collect::<Vec<_>>()
        .join(",");
    let from = (1..=receivers)
        .map(|i| format!("sp b{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let taps = (1..=receivers)
        .map(|i| {
            format!(
                "and b{i}=sp(streamof(sum(take(extract(a), {n}))), 'bg', {node}) ",
                n = scale.arrays,
                node = i + 1
            )
        })
        .collect::<String>();
    format!(
        "select extract(c) \
         from sp a, {from}, sp c \
         where c=sp(streamof(sum(merge({{{merge}}}))), 'bg', 0) \
         {taps}\
         and a=sp(streamof(iota(1,{n})),'bg',1);",
        n = scale.arrays
    )
}

/// The filter-pass query: the same single-generator shape as
/// [`columnar_query`], but the receiver runs the filter-heavy chain
/// `arith('*',3) → arith('+',1) → arith('-',1) → filter('>', 3n/2) →
/// arith('*',2) → cmp('<', 7n) → count`. Every element pays six
/// cost-bearing stages
/// (the regime the ISSUE targets: chain-dispatch cost dominating), the
/// filter keeps roughly half the stream (so the selection vector is
/// non-trivial in both directions), and the arithmetic and comparison
/// after the filter exercise the selection-carrying dense kernels. The
/// terminal `count` makes the answer a single integer any kernel
/// miscount would shift.
fn filter_query(scale: Scale) -> String {
    let n = scale.arrays;
    format!(
        "select extract(c) \
         from sp a, sp b1, sp c \
         where c=sp(streamof(sum(merge({{b1}}))), 'bg', 0) \
         and b1=sp(streamof(count(cmp(arith(filter(arith(arith(arith(extract(a), '*', 3), '+', 1), '-', 1), '>', {half}), '*', 2), '<', {cap}))), 'bg', 2) \
         and a=sp(streamof(iota(1,{n})),'bg',1);",
        half = 3 * n / 2,
        cap = 7 * n,
    )
}

/// The relay-pass query: a two-SP pipeline whose *upstream* receiver
/// re-emits — `arith('*',3) → filter('>', 3n/2)` keeps roughly half the
/// stream — feeding a downstream `sum` fold. With the columnar pass on,
/// the upstream SP relays survivor rows as shared column handles across
/// the b→c stream channel: one decomposition at the source, zero-copy
/// hand-off at the far end, and the downstream fold absorbs the
/// delivered column views without re-marshaling.
fn relay_query(scale: Scale) -> String {
    let n = scale.arrays;
    format!(
        "select extract(c) \
         from sp a, sp b1, sp c \
         where c=sp(streamof(sum(extract(b1))), 'bg', 0) \
         and b1=sp(filter(arith(extract(a), '*', 3), '>', {half}), 'bg', 2) \
         and a=sp(streamof(iota(1,{n})),'bg',1);",
        half = 3 * n as i64 / 2,
    )
}

/// The commit the report was produced from, for traceability of
/// archived sweeps; `"unknown"` outside a git work tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Prepares a batch-pass pipeline at the element-dense scale for one
/// chain-execution tier: the interpreted per-element reference
/// (`fuse: false`), the fused per-element scalar path, or the fused
/// columnar batch path. Preparation (spec construction, parse, bind,
/// placement) happens here, outside the timed region — it is identical
/// for every tier, and on sub-second legs a shared fixed cost inside
/// the timer would compress the ratio between them.
fn batch_points(
    query: fn(Scale) -> String,
    arrays: u64,
    fuse: bool,
    columnar: bool,
) -> Result<(Scale, Vec<SweepPoint>), ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = columnar_scale(arrays);
    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&query(scale))?;
    let buffer = 50_000u64;
    let points = vec![SweepPoint {
        series: 0,
        x: buffer as f64,
        plan,
        options: RunOptions {
            mpi_buffer: buffer,
            service_jitter: JITTER,
            coalesce: false,
            fuse,
            columnar,
            ..RunOptions::default()
        },
        spec,
    }];
    Ok((scale, points))
}

/// Runs a prepared batch-pass tier (jittered service times, so trains
/// provably cannot form and every delivery walks the per-event path).
fn batch_run(
    label: &'static str,
    scale: Scale,
    points: &[SweepPoint],
) -> Result<Vec<Series>, ScsqError> {
    sweep(
        &[label],
        points,
        scale,
        // The query's actual answer (the pipeline's summed total): any
        // miscount by a column kernel shifts it, which the cross-tier
        // equality check below then catches.
        |r| {
            r.values()
                .iter()
                .map(|v| v.as_real().unwrap_or(f64::NAN))
                .sum::<f64>()
        },
        1,
    )
}

/// Exits the process with the workload error (shared by the batch-pass
/// helpers, which run outside `main`'s closures).
fn fail(e: ScsqError) -> ! {
    eprintln!("perfstat workload failed: {e}");
    std::process::exit(1);
}

/// Times one batch-pass leg: `reps` runs, keeping the fastest wall —
/// the run least perturbed by the host — because a single scheduler
/// hiccup on a sub-second leg can swing a ratio by tens of percent.
/// The simulation itself is deterministic, so every repetition must
/// produce the same series; a mismatch aborts the report.
fn timed_leg(
    label: &'static str,
    query: fn(Scale) -> String,
    arrays: u64,
    reps: usize,
    fuse: bool,
    columnar: bool,
) -> (f64, Vec<Series>) {
    let (scale, points) = batch_points(query, arrays, fuse, columnar).unwrap_or_else(|e| fail(e));
    let mut best: Option<(f64, Vec<Series>)> = None;
    for _ in 0..reps {
        let t = Instant::now();
        let series = batch_run(label, scale, &points).unwrap_or_else(|e| fail(e));
        let wall = t.elapsed().as_secs_f64();
        match &best {
            Some((_, prev)) if *prev != series => {
                eprintln!(
                    "perfstat workload failed: {label} leg (fuse={fuse}, \
                     columnar={columnar}) is not deterministic across repetitions"
                );
                std::process::exit(1);
            }
            Some((w, _)) if *w <= wall => {}
            _ => best = Some((wall, series)),
        }
    }
    best.expect("at least one repetition ran")
}

/// One leg's untimed accounting run: the query answer, completion
/// time, RNG jitter-draw count and columnar batch count. The three
/// legs of a pass must agree on everything but the batch count — that
/// is the determinism contract the columnar bulk-charging path upholds.
#[derive(Debug, PartialEq)]
struct LegAccounting {
    answer: Vec<Value>,
    finished_ns: u64,
    jitter_draws: u64,
    columnar_batches: u64,
}

fn leg_accounting(
    query: fn(Scale) -> String,
    arrays: u64,
    fuse: bool,
    columnar: bool,
) -> LegAccounting {
    let (_, points) = batch_points(query, arrays, fuse, columnar).unwrap_or_else(|e| fail(e));
    let p = &points[0];
    let r = p.plan.run(&p.spec, &p.options).unwrap_or_else(|e| fail(e));
    LegAccounting {
        answer: r.values().to_vec(),
        finished_ns: r.finished().as_nanos(),
        jitter_draws: r.stats().jitter_draws,
        columnar_batches: r.stats().columnar_batches,
    }
}

/// Runs the three accounting legs of one batch pass and checks the
/// determinism contract: identical answer, completion time and RNG
/// draw count on every leg; batches absorbed only by the columnar leg.
/// Returns the columnar leg's accounting and whether the contract held.
fn pass_accounting(label: &str, query: fn(Scale) -> String, arrays: u64) -> (LegAccounting, bool) {
    let interp = leg_accounting(query, arrays, false, false);
    let scalar = leg_accounting(query, arrays, true, false);
    let on = leg_accounting(query, arrays, true, true);
    let agree = |a: &LegAccounting, b: &LegAccounting| {
        a.answer == b.answer && a.finished_ns == b.finished_ns && a.jitter_draws == b.jitter_draws
    };
    let ok = agree(&interp, &scalar)
        && agree(&scalar, &on)
        && interp.columnar_batches == 0
        && scalar.columnar_batches == 0
        && on.columnar_batches > 0;
    if !ok {
        eprintln!(
            "ERROR: {label} accounting diverges across legs: \
             interpreted={interp:?} fused-scalar={scalar:?} columnar={on:?}"
        );
    }
    (on, ok)
}

/// Counts the simulated events the jittered grid executes, by re-running
/// it with an event-count metric.
fn jittered_events(jobs: usize, smoke: bool) -> Result<f64, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale(smoke);
    let mut scsq = Scsq::with_spec(spec.clone());
    let points = jittered_points(&mut scsq, &spec, scale, false, false)?;
    let counts = sweep(
        &["fig6 jittered"],
        &points,
        scale,
        |r| r.stats().events as f64,
        jobs,
    )?;
    Ok(counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64)
}

/// Counts the total simulated events the workload executes (identical
/// for every `jobs` value and both coalescing modes — the coalescer
/// counts analytically skipped events as executed), by re-running the
/// same grid with an event-count metric.
fn workload_events(jobs: usize, smoke: bool) -> Result<f64, ScsqError> {
    let spec = HardwareSpec::lofar();
    let scale = perf_scale(smoke);
    let mut total = 0.0;

    let mut scsq = Scsq::with_spec(spec.clone());
    let plan = scsq.prepare(&fig6::query(scale))?;
    let mut points = Vec::new();
    for double in [false, true] {
        for &buffer in &buffer_sweep() {
            points.push(SweepPoint {
                series: 0,
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    ..RunOptions::default()
                },
                spec: spec.clone(),
            });
        }
    }
    let counts = sweep(&["fig6"], &points, scale, |r| r.stats().events as f64, jobs)?;
    total += counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64;

    let mut points = Vec::new();
    for q in 1..=6u8 {
        let text = fig15::query(q, scale);
        for n in 1..=4u32 {
            let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(n)))])?;
            points.push(SweepPoint {
                series: 0,
                x: f64::from(n),
                plan,
                options: RunOptions::default(),
                spec: spec.clone(),
            });
        }
    }
    let counts = sweep(
        &["fig15"],
        &points,
        scale,
        |r| r.stats().events as f64,
        jobs,
    )?;
    total += counts[0].points().iter().map(|(_, y)| y).sum::<f64>() * scale.reps as f64;

    Ok(total)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = parse_jobs(&args);
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    // Warm-up run so no timed pass pays first-touch costs. The metrics
    // hub records this pass only: it is disabled again before any timer
    // starts, so the timed passes pay exactly one relaxed atomic load
    // per query.
    let metrics = parse_metrics(&args);
    if metrics.is_some() {
        scsq_core::metrics::hub().enable(true);
    }
    workload(jobs, ExecMode::default(), smoke).unwrap_or_else(|e| fail(e));
    if let Some(path) = &metrics {
        scsq_core::metrics::hub().enable(false);
        write_hub_metrics_tagged(path, "warmup").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }

    let per_event_mode = ExecMode {
        coalesce: false,
        ..ExecMode::default()
    };
    let t0 = Instant::now();
    let per_event = workload(1, per_event_mode, smoke).unwrap_or_else(|e| fail(e));
    let per_event_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let coalesced = workload(1, ExecMode::default(), smoke).unwrap_or_else(|e| fail(e));
    let coalesced_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let parallel = workload(jobs, ExecMode::default(), smoke).unwrap_or_else(|e| fail(e));
    let parallel_s = t2.elapsed().as_secs_f64();

    // The jittered pass: every element takes the fused per-event path.
    let t3 = Instant::now();
    let jittered = jittered_workload(1, false, smoke, false).unwrap_or_else(|e| fail(e));
    let jittered_s = t3.elapsed().as_secs_f64();
    // Control: coalescing enabled must change nothing, because jitter
    // makes every period digest unique.
    let jittered_control = jittered_workload(1, true, smoke, false).unwrap_or_else(|e| fail(e));

    // The observability-overhead pass: the same jittered grid with the
    // whole layer on — metrics-hub recording, the flight-recorder span
    // gate, per-channel latency histograms and explain-analyze stage
    // tallies. Minima on both sides of the ratio: three observed reps,
    // and a gates-off baseline folding pass 4's wall in with two fresh
    // reps — a single-sample ratio on a sub-second leg would flake.
    let mut observed_s = f64::INFINITY;
    let mut observed_identical = true;
    for _ in 0..3 {
        scsq_core::metrics::set_observability(true);
        let t = Instant::now();
        let series = jittered_workload(1, false, smoke, true).unwrap_or_else(|e| fail(e));
        let wall = t.elapsed().as_secs_f64();
        scsq_core::metrics::set_observability(false);
        // Drain the flight recorder so spans never pile up across reps.
        let _ = scsq_sim::obs::take_spans();
        observed_s = observed_s.min(wall);
        observed_identical &= series == jittered;
    }
    let mut observed_off_s = jittered_s;
    for _ in 0..2 {
        let t = Instant::now();
        let series = jittered_workload(1, false, smoke, false).unwrap_or_else(|e| fail(e));
        observed_off_s = observed_off_s.min(t.elapsed().as_secs_f64());
        observed_identical &= series == jittered;
    }
    let observability_overhead = observed_s / observed_off_s - 1.0;

    // The batch passes: element-dense batches through the interpreted
    // per-element reference, the fused per-element scalar path, and the
    // fused columnar batch path — once over the take-sum pipeline and
    // once over the filter-heavy pipeline. A short untimed run of each
    // pipeline first, so the first timed leg does not absorb the pass's
    // first-touch costs and skew the ratios.
    let columnar_arrays: u64 = if smoke { 150_000 } else { 1_000_000 };
    let columnar_reps: usize = 3;
    for query in [
        columnar_query as fn(Scale) -> String,
        filter_query,
        relay_query,
    ] {
        let (scale, points) =
            batch_points(query, columnar_arrays / 10, true, true).unwrap_or_else(|e| fail(e));
        batch_run("warm-up", scale, &points).unwrap_or_else(|e| fail(e));
    }
    let take_sum = |fuse, columnar| {
        timed_leg(
            "take-sum columnar",
            columnar_query,
            columnar_arrays,
            columnar_reps,
            fuse,
            columnar,
        )
    };
    let (columnar_ref_s, columnar_ref) = take_sum(false, false);
    let (columnar_scalar_s, columnar_scalar) = take_sum(true, false);
    let (columnar_on_s, columnar_on) = take_sum(true, true);
    // The headline ratio is against the interpreted per-element chain —
    // the byte-identity reference the columnar path is proven against;
    // the fused-scalar wall is reported so the fusion and columnar
    // contributions stay separable.
    let columnar_speedup = columnar_ref_s / columnar_on_s;

    let filter_heavy = |fuse, columnar| {
        timed_leg(
            "filter columnar",
            filter_query,
            columnar_arrays,
            columnar_reps,
            fuse,
            columnar,
        )
    };
    let (filter_ref_s, filter_ref) = filter_heavy(false, false);
    let (filter_scalar_s, filter_scalar) = filter_heavy(true, false);
    let (filter_on_s, filter_on) = filter_heavy(true, true);
    let filter_speedup = filter_ref_s / filter_on_s;

    // The relay pass: a two-SP pipeline whose upstream chain re-emits
    // survivor rows as column handles across the stream channel, folded
    // downstream. Its gate is against the fused *scalar* leg — the
    // relay's gain must come from the columnar hand-off itself, not
    // from fusion.
    let relay = |fuse, columnar| {
        timed_leg(
            "relay columnar",
            relay_query,
            columnar_arrays,
            columnar_reps,
            fuse,
            columnar,
        )
    };
    let (relay_ref_s, relay_ref) = relay(false, false);
    let (relay_scalar_s, relay_scalar) = relay(true, false);
    let (relay_on_s, relay_on) = relay(true, true);
    let relay_speedup = relay_scalar_s / relay_on_s;

    // Accounting runs: one untimed execution per leg, proving the RNG
    // and simulated-time contract and counting absorbed batches.
    let (columnar_acct, columnar_acct_ok) =
        pass_accounting("take-sum", columnar_query, columnar_arrays);
    let (filter_acct, filter_acct_ok) = pass_accounting("filter", filter_query, columnar_arrays);
    let (relay_acct, relay_acct_ok) = pass_accounting("relay", relay_query, columnar_arrays);
    let accounting_ok = columnar_acct_ok && filter_acct_ok && relay_acct_ok;

    let identical = per_event == coalesced
        && coalesced == parallel
        && jittered == jittered_control
        && observed_identical
        && columnar_ref == columnar_scalar
        && columnar_scalar == columnar_on
        && filter_ref == filter_scalar
        && filter_scalar == filter_on
        && relay_ref == relay_scalar
        && relay_scalar == relay_on;
    if !identical {
        eprintln!(
            "ERROR: coalesced/parallel/jittered/observed/columnar/filter series differ from \
             their references"
        );
    }
    if observability_overhead >= 0.02 {
        eprintln!(
            "ERROR: observability overhead {:.2}% breached its 2% ceiling ({observed_off_s:.3}s \
             gates off vs {observed_s:.3}s everything on)",
            observability_overhead * 100.0
        );
    }
    if columnar_speedup < 1.3 {
        eprintln!(
            "ERROR: take-sum columnar pass fell below its 1.3x floor ({columnar_ref_s:.3}s \
             interpreted vs {columnar_on_s:.3}s columnar)"
        );
    }
    // Gate at 1.9, not 2.0: the measured ratio runs ~2.2–2.3x, but one
    // CI run landed at 2.008 — inside host noise of a 2.0 gate. 1.9
    // still trips on any real (>10%) regression without flaking on
    // scheduler jitter.
    if filter_speedup < 1.9 {
        eprintln!(
            "ERROR: filter columnar pass fell below its 1.9x floor ({filter_ref_s:.3}s \
             interpreted vs {filter_on_s:.3}s columnar)"
        );
    }
    if relay_speedup < 1.3 {
        eprintln!(
            "ERROR: relay columnar pass fell below its 1.3x floor ({relay_scalar_s:.3}s \
             fused scalar vs {relay_on_s:.3}s columnar)"
        );
    }

    let events = workload_events(jobs, smoke).unwrap_or_else(|e| fail(e));
    let jit_events = jittered_events(jobs, smoke).unwrap_or_else(|e| fail(e));
    let coalesce_speedup = per_event_s / coalesced_s;

    // The true machine parallelism, straight from the OS (the --jobs
    // flag may differ).
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // On a single-core host (or an explicit --jobs 1) pass 3 measures
    // thread-pool overhead, not parallelism — report null, not a bogus
    // ratio.
    let (parallel_speedup, parallel_note) = if host > 1 && jobs > 1 {
        (format!("{:.3}", coalesced_s / parallel_s), String::new())
    } else {
        (
            "null".to_string(),
            ",\n  \"parallel_note\": \"single_core_host\"".to_string(),
        )
    };

    let per_event_eps = jit_events / jittered_s;
    let commit = git_commit();
    let sweep_arrays = perf_scale(smoke).arrays;
    let json = format!(
        "{{\n  \"workload\": \"fig6 buffer sweep + fig15 n-sweep, 3 MB arrays x{sweep_arrays}\",\n  \
         \"git_commit\": \"{commit}\",\n  \
         \"smoke\": {smoke},\n  \
         \"host_parallelism\": {host},\n  \
         \"jobs\": {jobs},\n  \
         \"series_identical\": {identical},\n  \
         \"total_simulated_events\": {events},\n  \
         \"sequential_per_event\": {{ \"wall_s\": {per_event_s:.4}, \"events_per_s\": {pe_eps:.0} }},\n  \
         \"sequential_coalesced\": {{ \"wall_s\": {coalesced_s:.4}, \"events_per_s\": {co_eps:.0} }},\n  \
         \"parallel_coalesced\": {{ \"wall_s\": {parallel_s:.4}, \"events_per_s\": {pa_eps:.0} }},\n  \
         \"jittered_per_event\": {{ \"wall_s\": {jittered_s:.4}, \"events\": {jit_events}, \"events_per_s\": {per_event_eps:.0} }},\n  \
         \"observability_overhead\": {{ \"workload\": \"fig6 jittered grid, metrics hub + spans + latency histograms + profiler on\", \"wall_off_s\": {observed_off_s:.4}, \"wall_on_s\": {observed_s:.4}, \"overhead\": {observability_overhead:.4}, \"gate\": 0.02, \"off_cost\": \"one relaxed atomic load per gate; the baseline legs pay it\" }},\n  \
         \"columnar_batch\": {{ \"workload\": {{ \"pipeline\": \"take-sum\", \"elements\": {columnar_arrays}, \"elem_marshaled_bytes\": 9, \"mpi_buffer\": 50000, \"service_jitter\": {JITTER}, \"reps\": \"min of {columnar_reps}\" }}, \"wall_interpreted_s\": {columnar_ref_s:.4}, \"wall_fused_scalar_s\": {columnar_scalar_s:.4}, \"wall_columnar_s\": {columnar_on_s:.4}, \"finished_ns\": {c_fin}, \"jitter_draws\": {c_draws}, \"columnar_batches\": {c_batches} }},\n  \
         \"columnar_speedup\": {columnar_speedup:.3},\n  \
         \"filter_batch\": {{ \"workload\": {{ \"pipeline\": \"arith x3, filter, arith, cmp, count\", \"elements\": {columnar_arrays}, \"elem_marshaled_bytes\": 9, \"mpi_buffer\": 50000, \"service_jitter\": {JITTER}, \"reps\": \"min of {columnar_reps}\" }}, \"wall_interpreted_s\": {filter_ref_s:.4}, \"wall_fused_scalar_s\": {filter_scalar_s:.4}, \"wall_columnar_s\": {filter_on_s:.4}, \"finished_ns\": {f_fin}, \"jitter_draws\": {f_draws}, \"columnar_batches\": {f_batches} }},\n  \
         \"filter_speedup\": {filter_speedup:.3},\n  \
         \"relay_batch\": {{ \"workload\": {{ \"pipeline\": \"arith-filter relay -> sum\", \"elements\": {columnar_arrays}, \"elem_marshaled_bytes\": 9, \"mpi_buffer\": 50000, \"service_jitter\": {JITTER}, \"reps\": \"min of {columnar_reps}\" }}, \"wall_interpreted_s\": {relay_ref_s:.4}, \"wall_fused_scalar_s\": {relay_scalar_s:.4}, \"wall_columnar_s\": {relay_on_s:.4}, \"finished_ns\": {r_fin}, \"jitter_draws\": {r_draws}, \"columnar_batches\": {r_batches} }},\n  \
         \"relay_speedup\": {relay_speedup:.3},\n  \
         \"accounting_identical\": {accounting_ok},\n  \
         \"per_event_events_per_s\": {per_event_eps:.0},\n  \
         \"coalesce_speedup\": {coalesce_speedup:.3},\n  \
         \"coalesce_workload\": {{ \"sweep\": \"fig6 buffers x2 + fig15 n=1..4\", \"array_bytes\": 3000000, \"arrays\": {sweep_arrays}, \"service_jitter\": 0.0 }},\n  \
         \"parallel_speedup\": {parallel_speedup}{parallel_note}\n}}\n",
        pe_eps = events / per_event_s,
        co_eps = events / coalesced_s,
        pa_eps = events / parallel_s,
        c_fin = columnar_acct.finished_ns,
        c_draws = columnar_acct.jitter_draws,
        c_batches = columnar_acct.columnar_batches,
        f_fin = filter_acct.finished_ns,
        f_draws = filter_acct.jitter_draws,
        f_batches = filter_acct.columnar_batches,
        r_fin = relay_acct.finished_ns,
        r_draws = relay_acct.jitter_draws,
        r_batches = relay_acct.columnar_batches,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");
    if !identical
        || !accounting_ok
        || columnar_speedup < 1.3
        || filter_speedup < 1.9
        || relay_speedup < 1.3
        || observability_overhead >= 0.02
    {
        std::process::exit(1);
    }
}
