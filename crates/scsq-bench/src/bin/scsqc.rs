//! `scsqc` — command-line client for a running `scsqd`.
//!
//! Connects over TCP (`host:port`) or a Unix-domain socket
//! (`unix:/path/to.sock`), feeds an SCSQL script (file argument or
//! stdin) with the `scsql` shell's line discipline, and prints the
//! served transcript: rows and `-- …` summaries on stdout, errors as
//! `error: …` on stderr. The transcript of a served script is
//! byte-identical to running the same script locally with `scsql`:
//!
//! ```text
//! $ scsqd --listen 127.0.0.1:4545 &
//! LISTEN 127.0.0.1:4545
//! $ scsqc 127.0.0.1:4545 queries.scsql > served.out
//! $ scsql queries.scsql > local.out
//! $ diff served.out local.out && echo identical
//! identical
//! ```
//!
//! Protocol reference: `docs/server.md`.

use scsq_bench::serve::run_script;
use scsq_core::wire::Client;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!("usage: scsqc <host:port | unix:PATH> [script.scsql]");
        std::process::exit(2);
    };

    let mut client = match connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scsqc: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let script = match args.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scsqc: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("scsqc: cannot read stdin: {e}");
                std::process::exit(1);
            }
            text
        }
    };

    let mut out = std::io::stdout();
    let mut err = std::io::stderr();
    if let Err(e) = run_script(&mut client, &script, &mut out, &mut err) {
        eprintln!("scsqc: {e}");
        std::process::exit(1);
    }
    let _ = client.bye();
}

fn connect(addr: &str) -> std::io::Result<Client> {
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("unix:") {
        return Client::connect_unix(path);
    }
    Client::connect_tcp(addr)
}
