//! The §5 open question, answered by the model: inbound streaming at
//! 2× and 4× the paper's partition size, for both sender strategies,
//! plus the sender-host sweep that quantifies "co-locate back-end RPs
//! until saturation".
//!
//! Usage: `futurework_scaling [--quick] [--csv] [--jobs N] [--coalesce on|off] [--fuse on|off] [--columnar on|off] [--metrics PATH] [--profile] [--trace PATH]`
//!
//! `--profile` prints the explain-analyze per-stage table of one
//! representative run (the co-located strategy on the paper partition);
//! `--trace PATH` writes that run's spans in Chrome trace-event format.

use scsq_bench::{
    parse_coalesce, parse_columnar, parse_fuse, parse_jobs, parse_metrics, parse_profile,
    parse_trace, print_figure, profile_representative, scaling, series_to_csv, write_hub_metrics,
    Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let jobs = parse_jobs(&args);
    let metrics = parse_metrics(&args);
    let profile = parse_profile(&args);
    let trace = parse_trace(&args);
    if metrics.is_some() {
        scsq_core::metrics::hub().enable(true);
    }
    let mode = scsq_bench::ExecMode {
        coalesce: parse_coalesce(&args),
        fuse: parse_fuse(&args),
        columnar: parse_columnar(&args),
    };
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };

    let ns: Vec<u32> = vec![1, 2, 4, 8, 16];
    let series = scaling::run_with_jobs(scale, &ns, jobs, mode).unwrap_or_else(|e| {
        eprintln!("scaling study failed: {e}");
        std::process::exit(1);
    });
    let hosts = scaling::run_host_sweep_with_jobs(scale, &[1, 2, 4, 8, 16], jobs, mode)
        .unwrap_or_else(|e| {
            eprintln!("host sweep failed: {e}");
            std::process::exit(1);
        });
    if let Some(path) = &metrics {
        write_hub_metrics(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if profile || trace.is_some() {
        let (_, spec) = &scaling::partitions()[0];
        profile_representative(
            spec,
            &scaling::inbound_query(scale, "1"),
            &[],
            mode,
            profile,
            trace.as_deref(),
        );
    }

    if csv {
        print!("{}", series_to_csv(&series));
        print!("{}", series_to_csv(std::slice::from_ref(&hosts)));
        return;
    }
    print!(
        "{}",
        print_figure(
            "Future work (paper §5): inbound bandwidth vs partition size",
            "n",
            "aggregate inbound bandwidth (Mbps)",
            &series,
        )
    );
    println!();
    print!(
        "{}",
        print_figure(
            "Future work: sender hosts for 16 streams on the quad partition",
            "hosts",
            "aggregate inbound bandwidth (Mbps)",
            std::slice::from_ref(&hosts),
        )
    );
    if let Some((k, y)) = hosts.peak() {
        println!("# optimum: {k:.0} sender hosts -> {y:.0} Mbps (co-locate until saturation, then add hosts)");
    }
}
