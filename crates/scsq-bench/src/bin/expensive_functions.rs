//! §5's other open item: continuous queries with expensive functions.
//! Compares a single-node FFT pipeline with the paper's radix2
//! distribution over the array-size sweep.
//!
//! Usage: `expensive_functions [--quick] [--csv] [--coalesce on|off] [--fuse on|off] [--columnar on|off] [--metrics PATH] [--profile] [--trace PATH]`
//!
//! `--profile` prints the explain-analyze per-stage table of one
//! representative run (the distributed radix2 plan at 1 MB arrays);
//! `--trace PATH` writes that run's spans in Chrome trace-event format.

use scsq_bench::{
    expensive, parse_coalesce, parse_columnar, parse_fuse, parse_metrics, parse_profile,
    parse_trace, print_figure, profile_representative, series_to_csv, write_hub_metrics, Scale,
};
use scsq_core::HardwareSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let metrics = parse_metrics(&args);
    let profile = parse_profile(&args);
    let trace = parse_trace(&args);
    if metrics.is_some() {
        scsq_core::metrics::hub().enable(true);
    }
    let mode = scsq_bench::ExecMode {
        coalesce: parse_coalesce(&args),
        fuse: parse_fuse(&args),
        columnar: parse_columnar(&args),
    };
    let scale = if quick {
        Scale {
            arrays: 20,
            ..Scale::quick()
        }
    } else {
        Scale::paper()
    };
    let sizes = [10_000u64, 50_000, 200_000, 500_000, 1_000_000, 3_000_000];
    let spec = HardwareSpec::lofar();
    let series = expensive::run_with_mode(&spec, scale, &sizes, mode).unwrap_or_else(|e| {
        eprintln!("expensive-function study failed: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &metrics {
        write_hub_metrics(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if profile || trace.is_some() {
        profile_representative(
            &spec,
            &expensive::radix2_query(1_000_000, scale.arrays),
            &[],
            mode,
            profile,
            trace.as_deref(),
        );
    }
    if csv {
        print!("{}", series_to_csv(&series));
        return;
    }
    print!(
        "{}",
        print_figure(
            "Expensive functions (paper §5): single-node fft vs distributed radix2",
            "array (B)",
            "query time (ms, lower is better)",
            &series,
        )
    );
    for (x, s) in expensive::speedups(&series) {
        println!("# {x:>9.0} B arrays: radix2 speedup {s:.2}x");
    }
}
