//! Regenerates paper Figure 6: intra-BlueGene point-to-point streaming
//! bandwidth vs stream buffer size, single vs double buffering.
//!
//! Usage: `fig6_p2p [--quick] [--csv] [--jobs N] [--coalesce on|off] [--fuse on|off] [--columnar on|off] [--metrics PATH] [--profile] [--trace PATH]`
//!
//! `--profile` prints the explain-analyze per-stage table of one
//! representative run; `--trace PATH` writes that run's simulated-
//! timeline spans in Chrome trace-event format.

use scsq_bench::{
    buffer_sweep, fig6, parse_coalesce, parse_columnar, parse_fuse, parse_jobs, parse_metrics,
    parse_profile, parse_trace, print_figure, profile_representative, series_to_csv,
    write_hub_metrics, Scale,
};
use scsq_core::HardwareSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let jobs = parse_jobs(&args);
    let metrics = parse_metrics(&args);
    let profile = parse_profile(&args);
    let trace = parse_trace(&args);
    if metrics.is_some() {
        scsq_core::metrics::hub().enable(true);
    }
    let mode = scsq_bench::ExecMode {
        coalesce: parse_coalesce(&args),
        fuse: parse_fuse(&args),
        columnar: parse_columnar(&args),
    };
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let spec = HardwareSpec::lofar();
    let series =
        fig6::run_with_jobs(&spec, scale, &buffer_sweep(), jobs, mode).unwrap_or_else(|e| {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        });
    if let Some(path) = &metrics {
        write_hub_metrics(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if profile || trace.is_some() {
        profile_representative(
            &spec,
            &fig6::query(scale),
            &[],
            mode,
            profile,
            trace.as_deref(),
        );
    }
    if csv {
        print!("{}", series_to_csv(&series));
    } else {
        print!(
            "{}",
            print_figure(
                "Figure 6: intra-BG point-to-point streaming",
                "buffer (B)",
                "streaming bandwidth into node b (MB/s)",
                &series,
            )
        );
        for s in &series {
            let (x, y) = s.peak().expect("non-empty sweep");
            println!(
                "# {}: optimum {y:.1} MB/s at {x:.0}-byte buffers",
                s.label()
            );
        }
    }
}
