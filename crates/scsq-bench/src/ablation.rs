//! Node-selection ablation: the paper's naïve algorithm vs the
//! topology-aware refinement its observations motivate (§5: "we are
//! currently experimenting with refinements of the node selection
//! algorithm for the BlueGene based on the results of this paper").
//!
//! The workload is an inbound query with **no** user allocation
//! sequences — placement is entirely up to the policy. Under the naïve
//! algorithm all receiving compute nodes land in pset 1 and share one
//! I/O node; the topology-aware policy spreads them across psets
//! (observation 1) while keeping the back-end senders co-located
//! (observations 3/4).

use crate::{mean_metric, Scale};
use scsq_core::{ClusterName, HardwareSpec, PlacementPolicy, RunOptions, ScsqError, Value};
use scsq_sim::Series;

/// The unconstrained inbound workload.
pub fn query(scale: Scale) -> String {
    format!(
        "select extract(c) from \
         bag of sp a, bag of sp b, sp c, \
         integer n \
         where c=sp(streamof(sum(merge(b))), 'bg') \
         and b=spv( \
           (select streamof(count(extract(p))) \
            from sp p \
            where p in a), \
           'bg') \
         and a=spv( \
           (select gen_array({bytes},{n}) \
            from integer i where i in iota(1,n)), \
           'be') \
         and n=4;",
        bytes = scale.array_bytes,
        n = scale.arrays
    )
}

/// Runs the ablation: two series (one per policy), x = n, y = inbound
/// bandwidth (Mbps).
///
/// # Errors
///
/// Propagates query errors.
pub fn run(spec: &HardwareSpec, scale: Scale, ns: &[u32]) -> Result<Vec<Series>, ScsqError> {
    let text = query(scale);
    let mut out = Vec::new();
    for (label, policy) in [
        ("naive next-available", PlacementPolicy::Naive),
        ("topology-aware", PlacementPolicy::TopologyAware),
    ] {
        let options = RunOptions {
            placement: policy,
            ..RunOptions::default()
        };
        let mut series = Series::new(label);
        for &n in ns {
            let mbps = mean_metric(
                spec,
                &options,
                scale,
                &text,
                &[("n", Value::Integer(i64::from(n)))],
                |r| r.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene),
            )?;
            series.push(f64::from(n), mbps);
        }
        out.push(series);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_aware_beats_naive_at_n4() {
        let spec = HardwareSpec::lofar();
        let scale = Scale::quick();
        let series = run(&spec, scale, &[4]).unwrap();
        let naive = series[0].y_at(4.0).unwrap();
        let aware = series[1].y_at(4.0).unwrap();
        assert!(
            aware > 1.3 * naive,
            "topology-aware {aware:.0} Mbps should clearly beat naive {naive:.0} Mbps"
        );
    }
}
