//! Node-selection ablation: the paper's naïve algorithm vs the
//! topology-aware refinement its observations motivate (§5: "we are
//! currently experimenting with refinements of the node selection
//! algorithm for the BlueGene based on the results of this paper").
//!
//! The workload is an inbound query with **no** user allocation
//! sequences — placement is entirely up to the policy. Under the naïve
//! algorithm all receiving compute nodes land in pset 1 and share one
//! I/O node; the topology-aware policy spreads them across psets
//! (observation 1) while keeping the back-end senders co-located
//! (observations 3/4).

use crate::{sweep, ExecMode, Scale, SweepPoint};
use scsq_core::{ClusterName, HardwareSpec, PlacementPolicy, RunOptions, Scsq, ScsqError, Value};
use scsq_sim::Series;

/// The unconstrained inbound workload.
pub fn query(scale: Scale) -> String {
    format!(
        "select extract(c) from \
         bag of sp a, bag of sp b, sp c, \
         integer n \
         where c=sp(streamof(sum(merge(b))), 'bg') \
         and b=spv( \
           (select streamof(count(extract(p))) \
            from sp p \
            where p in a), \
           'bg') \
         and a=spv( \
           (select gen_array({bytes},{n}) \
            from integer i where i in iota(1,n)), \
           'be') \
         and n=4;",
        bytes = scale.array_bytes,
        n = scale.arrays
    )
}

/// Runs the ablation: two series (one per policy), x = n, y = inbound
/// bandwidth (Mbps).
///
/// # Errors
///
/// Propagates query errors.
pub fn run(spec: &HardwareSpec, scale: Scale, ns: &[u32]) -> Result<Vec<Series>, ScsqError> {
    run_with_jobs(spec, scale, ns, crate::default_jobs(), ExecMode::default())
}

/// [`run`] with an explicit worker count (`jobs = 1` runs sequentially;
/// the result is bit-identical for every `jobs` value) and execution
/// mode. Placement is a *compile-time* decision, so each (policy, n)
/// pair gets its own prepared plan.
///
/// # Errors
///
/// Propagates query errors.
pub fn run_with_jobs(
    spec: &HardwareSpec,
    scale: Scale,
    ns: &[u32],
    jobs: usize,
    mode: ExecMode,
) -> Result<Vec<Series>, ScsqError> {
    let text = query(scale);
    let labels = ["naive next-available", "topology-aware"];
    let mut scsq = Scsq::with_spec(spec.clone());
    let mut points = Vec::with_capacity(2 * ns.len());
    for (si, policy) in [
        (0, PlacementPolicy::Naive),
        (1, PlacementPolicy::TopologyAware),
    ] {
        let options = RunOptions {
            placement: policy,
            coalesce: mode.coalesce,
            fuse: mode.fuse,
            columnar: mode.columnar,
            ..RunOptions::default()
        };
        *scsq.options_mut() = options.clone();
        for &n in ns {
            let plan = scsq.prepare_with(&text, &[("n", Value::Integer(i64::from(n)))])?;
            points.push(SweepPoint {
                series: si,
                x: f64::from(n),
                plan,
                options: options.clone(),
                spec: spec.clone(),
            });
        }
    }
    sweep(
        &labels,
        &points,
        scale,
        |r| r.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene),
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_aware_beats_naive_at_n4() {
        let spec = HardwareSpec::lofar();
        let scale = Scale::quick();
        let series = run(&spec, scale, &[4]).unwrap();
        let naive = series[0].y_at(4.0).unwrap();
        let aware = series[1].y_at(4.0).unwrap();
        assert!(
            aware > 1.3 * naive,
            "topology-aware {aware:.0} Mbps should clearly beat naive {naive:.0} Mbps"
        );
    }
}
