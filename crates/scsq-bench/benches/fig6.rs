//! Criterion bench for the Figure 6 experiment (intra-BlueGene
//! point-to-point streaming).
//!
//! The simulation itself is deterministic; this bench measures the host
//! cost of regenerating figure points at representative buffer sizes,
//! and prints the simulated bandwidths so `cargo bench` doubles as a
//! smoke regeneration of the figure at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scsq_bench::{fig6, Scale};
use scsq_core::HardwareSpec;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();

    let mut group = c.benchmark_group("fig6_p2p");
    group.sample_size(10);
    for buffer in [100u64, 1_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffer),
            &buffer,
            |b, &buffer| {
                b.iter(|| {
                    let series = fig6::run(&spec, scale, &[buffer]).expect("fig6 runs");
                    black_box(series)
                });
            },
        );
    }
    group.finish();

    // Print the reduced-scale figure once for eyeballing.
    let series = fig6::run(&spec, scale, &[100, 1_000, 100_000]).expect("fig6 runs");
    for s in &series {
        println!("fig6 {}: {:?}", s.label(), s.points());
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
