//! Criterion bench for the Figure 15 experiment (inbound streaming,
//! Queries 1-6) plus the placement ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scsq_bench::{ablation, fig15, Scale};
use scsq_core::HardwareSpec;
use std::hint::black_box;

fn bench_fig15(c: &mut Criterion) {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();

    let mut group = c.benchmark_group("fig15_inbound");
    group.sample_size(10);
    for n in [1u32, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let series = fig15::run(&spec, scale, &[n]).expect("fig15 runs");
                black_box(series)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_placement");
    group.sample_size(10);
    group.bench_function("n4", |b| {
        b.iter(|| {
            let series = ablation::run(&spec, scale, &[4]).expect("ablation runs");
            black_box(series)
        });
    });
    group.finish();

    let series = fig15::run(&spec, scale, &[4]).expect("fig15 runs");
    for s in &series {
        println!("fig15 {}: {:?}", s.label(), s.points());
    }
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
