//! Criterion bench for the Figure 8 experiment (intra-BlueGene stream
//! merging, sequential vs balanced node selections).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scsq_bench::{fig8, Scale};
use scsq_core::HardwareSpec;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();

    let mut group = c.benchmark_group("fig8_merge");
    group.sample_size(10);
    for buffer in [1_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffer),
            &buffer,
            |b, &buffer| {
                b.iter(|| {
                    let series = fig8::run(&spec, scale, &[buffer]).expect("fig8 runs");
                    black_box(series)
                });
            },
        );
    }
    group.finish();

    let series = fig8::run(&spec, scale, &[1_000, 100_000]).expect("fig8 runs");
    for s in &series {
        println!("fig8 {}: {:?}", s.label(), s.points());
    }
    println!(
        "fig8 balanced-over-sequential gain: {:.2}x",
        fig8::best_balanced_gain(&series)
    );
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
