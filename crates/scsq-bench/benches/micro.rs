//! Microbenchmarks for the event-kernel hot path: raw event-queue
//! throughput, batch hand-off cost (Arc-backed [`Batch`] slicing vs
//! cloning the underlying tuples), the whole-column compute kernels
//! (map / filter+gather / aggregate at 64, 4k, and 64k rows), the
//! cross-SP relay hand-off against the marshal round trip at the same
//! sizes, the Figure 6 inner loop in both execution modes (per-event vs
//! train-coalesced), the fused stage programs against the interpreted
//! fallback, and route-table lookups against fresh dimension-ordered
//! route computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scsq_bench::{fig6, ExecMode, Scale};
use scsq_core::HardwareSpec;
use scsq_engine::columnar;
use scsq_net::{TorusDims, TorusNet, TorusParams};
use scsq_ql::batch::Batch;
use scsq_ql::column::{ColRow, Column, ColumnData, ColumnarBatch};
use scsq_ql::value::Value;
use scsq_sim::{EventQueue, SimTime};
use std::hint::black_box;

/// Push/pop N timestamped events through the queue, interleaved the way
/// the simulator's scheduling does (bursts of pushes, ordered pops).
fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(64);
                for i in 0..n as u64 {
                    // Mildly out-of-order arrival times, as produced by
                    // overlapping channel cycles.
                    q.push(SimTime::from_nanos(i ^ 0x55), i);
                    if i % 4 == 3 {
                        black_box(q.pop());
                    }
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            });
        });
    }
    group.finish();
}

/// Handing one emitted batch to `k` subscriber channels: the Arc-backed
/// batch clones a pointer per subscriber where the old representation
/// cloned every tuple.
fn bench_batch_handoff(c: &mut Criterion) {
    let values: Vec<Value> = (0..512).map(Value::Integer).collect();
    let subscribers = 8;

    let mut group = c.benchmark_group("batch_handoff");
    group.bench_function("arc_slice", |b| {
        let batch = Batch::new(values.clone());
        b.iter(|| {
            for _ in 0..subscribers {
                black_box(batch.slice(0, batch.len()));
            }
        });
    });
    group.bench_function("clone_tuples", |b| {
        b.iter(|| {
            for _ in 0..subscribers {
                black_box(values.clone());
            }
        });
    });
    group.finish();
}

/// The whole-column compute kernels behind the columnar fast path:
/// elementwise map, filter+gather, and the aggregate folds, at batch
/// sizes spanning a delivered train (64) to a full receive buffer run
/// (64k). The same work per element on the interpreted path costs an
/// enum match and a `Value` move; these loops are the ceiling the fused
/// columnar dispatch is measured against.
fn bench_column_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_kernels");
    for n in [64usize, 4_096, 65_536] {
        let ints = Column::new(ColumnData::Int64((0..n as i64).collect()));
        let floats = Column::new(ColumnData::Float64(
            (0..n).map(|i| i as f64 * 0.5).collect(),
        ));
        let mid = (n / 2) as i64;
        group.bench_with_input(BenchmarkId::new("map_add_i64", n), &ints, |b, col| {
            b.iter(|| black_box(columnar::add_i64(col, 7)));
        });
        group.bench_with_input(BenchmarkId::new("map_mul_f64", n), &floats, |b, col| {
            b.iter(|| black_box(columnar::mul_f64(col, 1.0625)));
        });
        group.bench_with_input(BenchmarkId::new("filter_take_i64", n), &ints, |b, col| {
            b.iter(|| {
                let mask = columnar::cmp_lt_i64(col, mid).expect("int column");
                let sel = columnar::filter_to_selection(&mask).expect("bool mask");
                black_box(columnar::take(col, &sel))
            });
        });
        group.bench_with_input(BenchmarkId::new("sum_i64", n), &ints, |b, col| {
            b.iter(|| black_box(columnar::sum_i64(col)));
        });
        // The pre-vectorization shape of the integer fold: one serial
        // wrapping accumulator, a loop-carried dependence the compiler
        // cannot break. `sum_i64` above runs the chunked multi-lane
        // shape; the gap between the two is the fold rework's win.
        group.bench_with_input(BenchmarkId::new("sum_i64_serial", n), &ints, |b, col| {
            b.iter(|| {
                let xs = col.as_i64().expect("int column");
                let mut acc = 0i64;
                for &x in xs {
                    acc = acc.wrapping_add(black_box(x));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("sum_f64", n), &floats, |b, col| {
            b.iter(|| black_box(columnar::sum_f64(col)));
        });
        group.bench_with_input(BenchmarkId::new("count", n), &ints, |b, col| {
            b.iter(|| black_box(columnar::count(col)));
        });
        // The stateful-stage kernels: elementwise arithmetic, a
        // comparison mask, and the filter-heavy composition the fused
        // chain runs per admitted batch (arith → filter → cmp over the
        // surviving selection).
        group.bench_with_input(BenchmarkId::new("arith_mul_i64", n), &ints, |b, col| {
            b.iter(|| black_box(columnar::arith_i64(col, scsq_engine::ArithOp::Mul, 3)));
        });
        group.bench_with_input(BenchmarkId::new("cmp_mask_ge_i64", n), &ints, |b, col| {
            b.iter(|| black_box(columnar::cmp_mask_i64(col, scsq_engine::CmpOp::Ge, mid)));
        });
        group.bench_with_input(BenchmarkId::new("arith_filter_cmp", n), &ints, |b, col| {
            b.iter(|| {
                let scaled =
                    columnar::arith_i64(col, scsq_engine::ArithOp::Mul, 3).expect("int column");
                let keep = columnar::cmp_mask_i64(&scaled, scsq_engine::CmpOp::Gt, mid)
                    .expect("int column");
                let sel = columnar::filter_to_selection(&keep).expect("bool mask");
                let second = columnar::cmp_mask_i64(&scaled, scsq_engine::CmpOp::Lt, 3 * mid)
                    .expect("int column");
                black_box(columnar::intersect_selection(&second, &sel).expect("bool mask"))
            });
        });
    }
    group.finish();
}

/// The cross-SP relay hand-off against the marshal round trip it
/// replaces. The relay forwards each surviving row as an `Arc`-backed
/// [`ColRow`] handle and the receiver reassembles a contiguous
/// same-view run with a zero-copy slice; the scalar path materializes
/// every row as an owned `Value` on the way out and the columnar
/// admission on the far side transposes the values back into columns.
fn bench_relay_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_handoff");
    for n in [64usize, 4_096, 65_536] {
        let batch =
            ColumnarBatch::from_values(&(0..n as i64).map(Value::Integer).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("col_handles", n), &batch, |b, batch| {
            b.iter(|| {
                // Sender side: one handle per surviving row.
                let handles: Vec<ColRow> = (0..batch.rows() as u32)
                    .map(|row| ColRow {
                        batch: batch.clone(),
                        row,
                    })
                    .collect();
                // Receiver side: a contiguous same-view run reassembles
                // without touching the payload.
                let first = handles[0].row as usize;
                let last = handles[handles.len() - 1].row as usize;
                black_box(handles[0].batch.slice(first, last + 1))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("marshal_roundtrip", n),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut vals = Vec::with_capacity(batch.rows());
                    batch.to_values_into(&mut vals);
                    black_box(ColumnarBatch::from_values(&vals))
                });
            },
        );
    }
    group.finish();
}

/// The Figure 6 inner loop at a coalescing-friendly point (paper-size
/// arrays, small MPI buffer => long periodic trains), in both modes.
fn bench_fig6_inner(c: &mut Criterion) {
    let spec = HardwareSpec::lofar();
    let scale = Scale {
        array_bytes: 3_000_000,
        arrays: 5,
        ..Scale::quick()
    };

    let mut group = c.benchmark_group("fig6_inner");
    group.sample_size(10);
    for (label, coalesce) in [("coalesced", true), ("per_event", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mode = ExecMode {
                    coalesce,
                    ..ExecMode::default()
                };
                let series =
                    fig6::run_with_jobs(&spec, scale, &[1_000], 1, mode).expect("fig6 runs");
                black_box(series)
            });
        });
    }
    group.finish();
}

/// The per-event path with fused stage programs vs the interpreted
/// fallback (coalescing disabled in both so every element walks the
/// stage chain).
fn bench_fused_vs_interpreted(c: &mut Criterion) {
    let spec = HardwareSpec::lofar();
    let scale = Scale {
        array_bytes: 3_000_000,
        arrays: 5,
        ..Scale::quick()
    };

    let mut group = c.benchmark_group("fused_stage_programs");
    group.sample_size(10);
    for (label, fuse) in [("fused", true), ("interpreted", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mode = ExecMode {
                    coalesce: false,
                    fuse,
                    columnar: fuse,
                };
                let series =
                    fig6::run_with_jobs(&spec, scale, &[1_000], 1, mode).expect("fig6 runs");
                black_box(series)
            });
        });
    }
    group.finish();
}

/// Route-table hits vs fresh dimension-ordered route computation for
/// every (src, dst) pair of a paper-scale partition.
fn bench_route_cache(c: &mut Criterion) {
    let dims = TorusDims::new(4, 4, 2);
    let net = TorusNet::new(dims, TorusParams::default());
    let n = dims.node_count();

    let mut group = c.benchmark_group("route_cache");
    group.bench_function("cached", |b| {
        b.iter(|| {
            for src in 0..n {
                for dst in 0..n {
                    black_box(net.cached_route(src, dst));
                }
            }
        });
    });
    group.bench_function("fresh", |b| {
        b.iter(|| {
            for src in 0..n {
                for dst in 0..n {
                    black_box(dims.route(src, dst));
                }
            }
        });
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_batch_handoff,
    bench_column_kernels,
    bench_relay_handoff,
    bench_fig6_inner,
    bench_fused_vs_interpreted,
    bench_route_cache
);
criterion_main!(micro);
