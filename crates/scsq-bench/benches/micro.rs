//! Microbenchmarks for the event-kernel hot path: raw event-queue
//! throughput, batch hand-off cost (Arc-backed [`Batch`] slicing vs
//! cloning the underlying tuples), and the Figure 6 inner loop in both
//! execution modes (per-event vs train-coalesced).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scsq_bench::{fig6, Scale};
use scsq_core::HardwareSpec;
use scsq_ql::batch::Batch;
use scsq_ql::value::Value;
use scsq_sim::{EventQueue, SimTime};
use std::hint::black_box;

/// Push/pop N timestamped events through the queue, interleaved the way
/// the simulator's scheduling does (bursts of pushes, ordered pops).
fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(64);
                for i in 0..n as u64 {
                    // Mildly out-of-order arrival times, as produced by
                    // overlapping channel cycles.
                    q.push(SimTime::from_nanos(i ^ 0x55), i);
                    if i % 4 == 3 {
                        black_box(q.pop());
                    }
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            });
        });
    }
    group.finish();
}

/// Handing one emitted batch to `k` subscriber channels: the Arc-backed
/// batch clones a pointer per subscriber where the old representation
/// cloned every tuple.
fn bench_batch_handoff(c: &mut Criterion) {
    let values: Vec<Value> = (0..512).map(Value::Integer).collect();
    let subscribers = 8;

    let mut group = c.benchmark_group("batch_handoff");
    group.bench_function("arc_slice", |b| {
        let batch = Batch::new(values.clone());
        b.iter(|| {
            for _ in 0..subscribers {
                black_box(batch.slice(0, batch.len()));
            }
        });
    });
    group.bench_function("clone_tuples", |b| {
        b.iter(|| {
            for _ in 0..subscribers {
                black_box(values.clone());
            }
        });
    });
    group.finish();
}

/// The Figure 6 inner loop at a coalescing-friendly point (paper-size
/// arrays, small MPI buffer => long periodic trains), in both modes.
fn bench_fig6_inner(c: &mut Criterion) {
    let spec = HardwareSpec::lofar();
    let scale = Scale {
        array_bytes: 3_000_000,
        arrays: 5,
        ..Scale::quick()
    };

    let mut group = c.benchmark_group("fig6_inner");
    group.sample_size(10);
    for (mode, coalesce) in [("coalesced", true), ("per_event", false)] {
        group.bench_function(mode, |b| {
            b.iter(|| {
                let series =
                    fig6::run_with_jobs(&spec, scale, &[1_000], 1, coalesce).expect("fig6 runs");
                black_box(series)
            });
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_batch_handoff,
    bench_fig6_inner
);
criterion_main!(micro);
