//! Every figure pipeline must render byte-identical CSV whether
//! delivered batches take the columnar fast path or the per-element
//! path: the columnar kernels may only change wall-clock time, never a
//! figure.
//!
//! The scale is chosen so the columnar pass actually fires: arrays
//! small enough that one MPI buffer period delivers many of them in a
//! single batch (the pass declines batches of fewer than two
//! elements), with coalescing off so every delivery walks the fused
//! per-event path.

use scsq_bench::{fig15, fig6, series_to_csv, ExecMode, Scale};
use scsq_core::HardwareSpec;

/// The columnar deliver path (the shipping default for fused runs).
const COLUMNAR: ExecMode = ExecMode {
    coalesce: false,
    fuse: true,
    columnar: true,
};

/// The same fused chains driven one element at a time (`--columnar off`).
const SCALAR: ExecMode = ExecMode {
    coalesce: false,
    fuse: true,
    columnar: false,
};

/// Small arrays, so a 5 kB–50 kB buffer period batches 5–50 of them.
fn dense_scale() -> Scale {
    Scale {
        array_bytes: 1_000,
        arrays: 30,
        ..Scale::quick()
    }
}

#[test]
fn fig6_csv_is_identical_under_columnar() {
    let spec = HardwareSpec::lofar();
    let buffers = [5_000u64, 50_000];
    let on = fig6::run_with_jobs(&spec, dense_scale(), &buffers, 1, COLUMNAR).unwrap();
    let off = fig6::run_with_jobs(&spec, dense_scale(), &buffers, 1, SCALAR).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}

#[test]
fn fig15_csv_is_identical_under_columnar() {
    let spec = HardwareSpec::lofar();
    let on = fig15::run_with_jobs(&spec, dense_scale(), &[1, 4], 1, COLUMNAR).unwrap();
    let off = fig15::run_with_jobs(&spec, dense_scale(), &[1, 4], 1, SCALAR).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}
