//! Every figure pipeline must render byte-identical CSV whether the
//! train-coalescing fast path is on or off: the coalescer may only
//! change wall-clock time, never a figure.

use scsq_bench::{ablation, expensive, fig15, fig6, fig8, scaling, series_to_csv, ExecMode, Scale};
use scsq_core::HardwareSpec;

const PER_EVENT: ExecMode = ExecMode {
    coalesce: false,
    fuse: true,
    columnar: true,
};

fn scale() -> Scale {
    Scale {
        arrays: 4,
        ..Scale::quick()
    }
}

#[test]
fn fig6_csv_is_identical() {
    let spec = HardwareSpec::lofar();
    let buffers = [100u64, 1_000, 100_000];
    let on = fig6::run_with_jobs(&spec, scale(), &buffers, 1, ExecMode::default()).unwrap();
    let off = fig6::run_with_jobs(&spec, scale(), &buffers, 1, PER_EVENT).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}

#[test]
fn fig8_csv_is_identical() {
    let spec = HardwareSpec::lofar();
    let buffers = [1_000u64, 10_000];
    let on = fig8::run_with_jobs(&spec, scale(), &buffers, 1, ExecMode::default()).unwrap();
    let off = fig8::run_with_jobs(&spec, scale(), &buffers, 1, PER_EVENT).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}

#[test]
fn fig15_csv_is_identical() {
    let spec = HardwareSpec::lofar();
    let on = fig15::run_with_jobs(&spec, scale(), &[1, 4], 1, ExecMode::default()).unwrap();
    let off = fig15::run_with_jobs(&spec, scale(), &[1, 4], 1, PER_EVENT).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}

#[test]
fn ablation_csv_is_identical() {
    let spec = HardwareSpec::lofar();
    let on = ablation::run_with_jobs(&spec, scale(), &[4], 1, ExecMode::default()).unwrap();
    let off = ablation::run_with_jobs(&spec, scale(), &[4], 1, PER_EVENT).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}

#[test]
fn scaling_csv_is_identical() {
    let on = scaling::run_with_jobs(scale(), &[4], 1, ExecMode::default()).unwrap();
    let off = scaling::run_with_jobs(scale(), &[4], 1, PER_EVENT).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}

#[test]
fn expensive_csv_is_identical() {
    let spec = HardwareSpec::lofar();
    let sizes = [100_000u64, 1_000_000];
    let on = expensive::run_with_mode(&spec, scale(), &sizes, ExecMode::default()).unwrap();
    let off = expensive::run_with_mode(&spec, scale(), &sizes, PER_EVENT).unwrap();
    assert_eq!(
        series_to_csv(&on).into_bytes(),
        series_to_csv(&off).into_bytes()
    );
}
