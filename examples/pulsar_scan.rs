//! A LOFAR-style science pipeline: pulsar scanning.
//!
//! The paper's introduction motivates SCSQ with LOFAR: antenna streams
//! are processed "in real time to detect astronomical events as they
//! occur". This example composes the reproduction's operators into that
//! shape — a user-defined query function that receives antenna signal
//! arrays, computes their spectra with the distributed radix-2 plan of
//! §2.4, converts them to per-bin power, and streams the power spectra
//! to the client, which flags the dominant tone of each array.
//!
//! Run with: `cargo run --example pulsar_scan`

use scsq::prelude::*;
use scsq::ArrayData;

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();
    scsq.options_mut().receiver_arrays = 12;
    scsq.options_mut().receiver_samples = 2048;

    // One reusable query function per antenna: receive on the back-end
    // (where LOFAR's streams arrive), FFT in parallel on two BlueGene
    // nodes, convert to power on a third, deliver to the front-end.
    scsq.define(
        "create function pulsarscan(string antenna) -> stream
         as select extract(p)
         from sp a, sp b, sp c, sp p
         where p=sp(power(radixcombine(merge({a,b}))), 'bg')
         and a=sp(fft(odd (extract(c))), 'bg')
         and b=sp(fft(even(extract(c))), 'bg')
         and c=sp(receiver(antenna), 'be');",
    )?;

    let antenna = "lofar-station-CS002";
    println!(
        "set-up:\n{}",
        scsq.explain(&format!("pulsarscan('{antenna}');"))?
    );

    let result = scsq.run(&format!("pulsarscan('{antenna}');"))?;
    println!("power spectra received: {}", result.values().len());

    // The receiver's synthetic antenna signal has a known fundamental:
    // base = 3 + (len(antenna) + index) % 13 cycles. Detection must find
    // exactly that bin.
    let mut detections = Vec::new();
    for (index, value) in result.values().iter().enumerate() {
        let Value::Array(ArrayData::Real(power)) = value else {
            panic!("expected a real power spectrum, got {value}");
        };
        let half = power.len() / 2;
        let (bin, peak) = power[..half]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty spectrum");
        let expected = 3 + (antenna.len() + index) % 13;
        println!(
            "  array {index:2}: dominant tone bin {bin:2} (power {:.0}) — expected {expected}",
            peak
        );
        assert_eq!(bin, expected, "detection must match the injected tone");
        detections.push(bin);
    }
    assert_eq!(detections.len(), 12);
    println!(
        "ok: all {} tones detected; query time {}",
        detections.len(),
        result.total_time()
    );
    Ok(())
}
