//! TCP vs UDP stream carriers between clusters.
//!
//! §2.1: the BlueGene's I/O nodes "provide TCP or UDP" for communication
//! with the Linux clusters. SCSQ always uses TCP (§2.3) — this example
//! shows why: with four saturating generators aimed at one compute node,
//! TCP's flow control delivers every array, while UDP overruns the I/O
//! node's forwarding buffer and loses data.
//!
//! Run with: `cargo run --release --example udp_vs_tcp`

use scsq::prelude::*;

const QUERY: &str = "select extract(b) from bag of sp a, sp b, integer n
                     where b=sp(count(merge(a)), 'bg')
                     and a=spv((select gen_array(8000,2000)
                                from integer i where i in iota(1,n)), 'be', urr('be'))
                     and n=4;";

const EXPECTED: i64 = 4 * 2000;

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();

    let tcp = scsq.run(QUERY)?;
    let tcp_count = tcp.values()[0].as_integer().expect("count");
    println!(
        "TCP : {tcp_count}/{EXPECTED} arrays in {} ({:.0} Mbps inbound)",
        tcp.total_time(),
        tcp.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene)
    );

    scsq.options_mut().udp_inter_cluster = true;
    let udp = scsq.run(QUERY)?;
    let udp_count = udp.values()[0].as_integer().expect("count");
    println!(
        "UDP : {udp_count}/{EXPECTED} arrays in {} ({:.1}% loss)",
        udp.total_time(),
        100.0 * (EXPECTED - udp_count) as f64 / EXPECTED as f64
    );

    assert_eq!(tcp_count, EXPECTED, "TCP delivers everything");
    assert!(udp_count < EXPECTED, "UDP overload loses arrays");
    assert!(
        udp.total_time() < tcp.total_time(),
        "UDP finishes sooner — by discarding data"
    );
    println!("ok: this is why SCSQ carries inter-cluster streams over TCP (§2.3)");
    Ok(())
}
