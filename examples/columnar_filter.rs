//! A filter-heavy pipeline on the columnar batch path.
//!
//! Stream process `a` generates a dense run of integers; `b` scales
//! each one, filters on a threshold, compares the survivors against a
//! cap and counts them. Every stage is a stateful per-element operator
//! on the interpreted path — but the whole chain qualifies for the
//! columnar fast path, so each delivered batch runs as vectorized
//! arithmetic, one comparison mask, and a selection-vector fold, with
//! a single bulk cost charge that draws exactly the same jitter
//! factors as per-element execution. The example runs the query once
//! per execution tier and shows that the answers, completion times and
//! RNG draw counts agree while only the columnar tier absorbs batches.
//!
//! Run with: `cargo run --example columnar_filter`

use scsq::prelude::*;

fn main() -> Result<(), ScsqError> {
    let query = "select extract(b)
         from sp a, sp b
         where b=sp(streamof(count(cmp(filter(arith(extract(a), '*', 3), '>', 60000), '<', 300001))), 'bg', 0)
         and a=sp(streamof(iota(1, 100000)), 'bg', 1);";

    let mut scsq = Scsq::lofar();
    scsq.options_mut().service_jitter = 0.05;
    scsq.options_mut().coalesce = false;
    let plan = scsq.prepare(query)?;

    println!("{}", plan.explain());

    let mut runs = Vec::new();
    for (label, fuse, columnar) in [
        ("interpreted ", false, false),
        ("fused scalar", true, false),
        ("columnar    ", true, true),
    ] {
        scsq.options_mut().fuse = fuse;
        scsq.options_mut().columnar = columnar;
        let r = scsq.run_prepared(&plan)?;
        println!(
            "{label}: answer={:?}  finished={}  jitter_draws={}  columnar_batches={}",
            r.values(),
            r.finished(),
            r.stats().jitter_draws,
            r.stats().columnar_batches,
        );
        runs.push(r);
    }

    // The determinism contract: every tier lands on the same answer at
    // the same simulated instant having consumed the same RNG stream.
    let (reference, rest) = runs.split_first().expect("three runs");
    for r in rest {
        assert_eq!(r.values(), reference.values());
        assert_eq!(r.finished(), reference.finished());
        assert_eq!(r.stats().jitter_draws, reference.stats().jitter_draws);
    }
    assert!(
        runs[2].stats().columnar_batches > 0,
        "the filter chain must ride the columnar path"
    );
    // 3x ∈ (60000, 300001) keeps x ∈ (20000, 100000]: 80000 survivors.
    assert_eq!(reference.values(), &[Value::Integer(80_000)]);
    println!("ok: identical books across all three tiers");
    Ok(())
}
