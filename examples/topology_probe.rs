//! Using stream queries to measure communication performance — the
//! paper's own use case, as a runnable example.
//!
//! This is the §3 methodology end to end: formulate SCSQL queries whose
//! allocation sequences pin stream processes to chosen nodes, run them,
//! and read the streaming bandwidth off the query completion times. The
//! probe compares (1) point-to-point vs merged intra-BlueGene streams,
//! (2) the sequential vs balanced node selections of Fig 7, and (3) one
//! vs many I/O nodes for inbound streams.
//!
//! Run with: `cargo run --release --example topology_probe`

use scsq::prelude::*;

const ARRAY: u64 = 1_000_000;
const COUNT: u64 = 30;

fn probe(scsq: &mut Scsq, label: &str, query: &str) -> Result<f64, ScsqError> {
    let result = scsq.run(query)?;
    let mbs = result.bandwidth_into(NodeId::bg(0)) / 1e6;
    println!("{label:<42} {mbs:>8.1} MB/s  ({})", result.total_time());
    Ok(mbs)
}

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();
    scsq.options_mut().mpi_buffer = 100_000;

    println!("== intra-BlueGene streaming (buffer = 100 KB) ==");
    let p2p = probe(
        &mut scsq,
        "point-to-point (node 1 -> node 0)",
        &format!(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array({ARRAY},{COUNT}),'bg',1);"
        ),
    )?;

    let sequential = probe(
        &mut scsq,
        "merge, sequential selection (nodes 1,2 -> 0)",
        &format!(
            "select extract(c) from sp a, sp b, sp c
             where c=sp(count(merge({{a,b}})), 'bg',0)
             and a=sp(gen_array({ARRAY},{COUNT}),'bg',1)
             and b=sp(gen_array({ARRAY},{COUNT}),'bg',2);"
        ),
    )?;

    let balanced = probe(
        &mut scsq,
        "merge, balanced selection (nodes 1,4 -> 0)",
        &format!(
            "select extract(c) from sp a, sp b, sp c
             where c=sp(count(merge({{a,b}})), 'bg',0)
             and a=sp(gen_array({ARRAY},{COUNT}),'bg',1)
             and b=sp(gen_array({ARRAY},{COUNT}),'bg',4);"
        ),
    )?;

    println!();
    println!("== BlueGene inbound streaming (4 back-end generators) ==");
    let one_io = {
        let result = scsq.run(&format!(
            "select extract(c) from
             bag of sp a, bag of sp b, sp c, integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv((select streamof(count(extract(p)))
                        from sp p where p in a), 'bg', inPset(1))
             and a=spv((select gen_array({ARRAY},{COUNT})
                        from integer i where i in iota(1,n)), 'be', 1)
             and n=4;"
        ))?;
        let mbps = result.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene);
        println!("{:<42} {mbps:>8.1} Mbps", "one I/O node (inPset(1))");
        mbps
    };
    let many_io = {
        let result = scsq.run(&format!(
            "select extract(c) from
             bag of sp a, bag of sp b, sp c, integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv((select streamof(count(extract(p)))
                        from sp p where p in a), 'bg', psetrr())
             and a=spv((select gen_array({ARRAY},{COUNT})
                        from integer i where i in iota(1,n)), 'be', 1)
             and n=4;"
        ))?;
        let mbps = result.mbps_between(ClusterName::BackEnd, ClusterName::BlueGene);
        println!("{:<42} {mbps:>8.1} Mbps", "four I/O nodes (psetrr())");
        mbps
    };

    println!();
    println!("== findings (the paper's observations) ==");
    println!(
        "balanced merge is {:.0}% faster than sequential (paper: up to 60%)",
        (balanced / sequential - 1.0) * 100.0
    );
    println!(
        "merging reaches {:.0}% of two point-to-point links (co-processor sharing)",
        balanced / (2.0 * p2p) * 100.0
    );
    println!(
        "spreading inbound streams over I/O nodes gains {:.1}x (paper: Queries 5/6 vs 1-4)",
        many_io / one_io
    );

    assert!(balanced > sequential);
    assert!(many_io > 1.5 * one_io);
    Ok(())
}
