//! Quickstart: run your first continuous query on the simulated LOFAR
//! environment.
//!
//! The query is the paper's intra-BlueGene point-to-point measurement
//! (§3.1): stream process `a` generates a finite stream of arrays on
//! BlueGene node 1, stream process `b` counts them on node 0, and only
//! the count travels to the front-end client.
//!
//! Run with: `cargo run --example quickstart`

use scsq::prelude::*;

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();

    // Streams and stream processes are first-class objects in SCSQL:
    // the `where` clause assigns sub-queries to stream processes, and the
    // third argument of sp() pins each one to an explicit BlueGene node.
    let result = scsq.run(
        "select extract(b)
         from sp a, sp b
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(3000000,100),'bg',1);",
    )?;

    println!("result values : {:?}", result.values());
    println!("query time    : {}", result.total_time());
    println!(
        "stream rate   : {:.1} MB/s into bg:0",
        result.bandwidth_into(NodeId::bg(0)) / 1e6
    );
    for ch in &result.stats().channels {
        println!(
            "channel       : {} -> {} [{}] {} bytes",
            ch.src, ch.dst, ch.carrier, ch.bytes
        );
    }

    assert_eq!(result.values(), &[Value::Integer(100)]);
    println!("ok: all 100 arrays were counted");
    Ok(())
}
