//! Sliding-window aggregation over a stream — the "common stream
//! operators including window aggregation" SCSQ claims in §4.
//!
//! A back-end stream process produces readings; a BlueGene stream
//! process computes tumbling and sliding window aggregates; the client
//! receives the aggregate stream.
//!
//! Run with: `cargo run --example window_aggregates`

use scsq::prelude::*;

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();

    // Tumbling sum over a deterministic integer stream: iota(1,12) in
    // windows of 4 -> 1+2+3+4, 5+6+7+8, 9+10+11+12.
    let result = scsq.run(
        "select extract(w) from sp src, sp w
         where w=sp(winagg(extract(src), 4, 4, 'sum'), 'bg')
         and src=sp(streamof(iota(1,12)), 'be');",
    )?;
    println!("tumbling sums  : {:?}", result.values());
    assert_eq!(
        result.values(),
        &[Value::Integer(10), Value::Integer(26), Value::Integer(42)]
    );

    // Sliding maximum with slide 1 — a peak-hold detector.
    let result = scsq.run(
        "select extract(w) from sp src, sp w
         where w=sp(winagg(extract(src), 3, 1, 'max'), 'bg')
         and src=sp(streamof(iota(1,6)), 'be');",
    )?;
    println!("sliding maxima : {:?}", result.values());
    assert_eq!(
        result.values(),
        &[
            Value::Integer(3),
            Value::Integer(4),
            Value::Integer(5),
            Value::Integer(6)
        ]
    );

    // Windowed average, flushing a final partial window at end of
    // stream.
    let result = scsq.run(
        "select extract(w) from sp src, sp w
         where w=sp(winagg(extract(src), 4, 4, 'avg'), 'bg')
         and src=sp(streamof(iota(1,10)), 'be');",
    )?;
    println!("window averages: {:?}", result.values());
    assert_eq!(
        result.values(),
        &[Value::Real(2.5), Value::Real(6.5), Value::Real(9.5)]
    );

    println!("ok: window aggregates match hand-computed values");
    Ok(())
}
