//! The paper's radix2 FFT query function (§2.4): parallelizing an FFT
//! over stream processes.
//!
//! A receiver SP produces signal arrays; two SPs compute the FFT of the
//! odd- and even-indexed samples in parallel; `radixcombine()` merges the
//! partial spectra. This example verifies that the *distributed* plan
//! computes exactly the spectrum a direct FFT produces, and that the
//! dominant tone of the synthetic antenna signal lands in the right bin.
//!
//! Run with: `cargo run --example radix2_fft`

use scsq::prelude::*;
use scsq::ArrayData;

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();

    // The function text is the paper's, verbatim modulo whitespace.
    scsq.define(
        "create function radix2(string s)
             -> stream
         as select radixcombine(merge({a,b}))
         from sp a, sp b, sp c
         where a=sp(fft(odd (extract(c))))
         and b=sp(fft(even(extract(c))))
         and c=sp(receiver(s));",
    )?;

    let result = scsq.run("radix2('lofar-antenna-7');")?;
    println!("spectra received : {}", result.values().len());
    println!("query time       : {}", result.total_time());

    // Re-derive the expected spectra directly with the FFT library and
    // compare bin by bin.
    let samples = scsq.options().receiver_samples;
    let arrays = scsq.options().receiver_arrays;
    assert_eq!(result.values().len(), arrays as usize);

    for (index, value) in result.values().iter().enumerate() {
        let Value::Array(ArrayData::Complex(spectrum)) = value else {
            panic!("expected a complex spectrum, got {value}");
        };
        assert_eq!(spectrum.len(), samples);

        // The engine's receiver() source is deterministic; rebuild the
        // same signal and FFT it directly.
        let direct = reference_spectrum("lofar-antenna-7", index as u64, samples);
        let mut max_err = 0.0f64;
        for (got, want) in spectrum.iter().zip(&direct) {
            let err = ((got.0 - want.re).powi(2) + (got.1 - want.im).powi(2)).sqrt();
            max_err = max_err.max(err);
        }
        assert!(
            max_err < 1e-6,
            "distributed FFT deviates from direct FFT by {max_err}"
        );

        // Find the dominant tone.
        let peak_bin = spectrum
            .iter()
            .take(samples / 2)
            .enumerate()
            .max_by(|a, b| {
                let ma = a.1 .0.hypot(a.1 .1);
                let mb = b.1 .0.hypot(b.1 .1);
                ma.total_cmp(&mb)
            })
            .map(|(i, _)| i)
            .expect("non-empty spectrum");
        println!(
            "  array {index}: dominant tone in bin {peak_bin}, max |Δ| vs direct = {max_err:.2e}"
        );
    }
    println!("ok: distributed radix-2 plan equals the direct FFT on every array");
    Ok(())
}

/// The expected spectrum: the same deterministic antenna signal the
/// engine's `receiver()` source generates, transformed directly.
fn reference_spectrum(name: &str, index: u64, samples: usize) -> Vec<scsq_fft::Complex> {
    let base = 3 + (name.len() as u64 + index) % 13;
    let fundamental = scsq_fft::sine(samples, base as f64, 1.0);
    let overtone = scsq_fft::sine(samples, (base * 2) as f64, 0.25);
    let mixed: Vec<f64> = fundamental
        .iter()
        .zip(&overtone)
        .map(|(a, b)| a + b)
        .collect();
    scsq_fft::fft_real(&mixed).expect("power-of-two signal")
}
