//! The paper's mapreduce example (§2.4): a distributed grep over many
//! files, each grep call running in its own stream process.
//!
//! "The distributed grep mapreduce query using 1000 parallel grep calls
//! is specified in SCSQL as follows: merge(spv(select grep(...) ...))".
//! Here we use 64 parallel grep processes over the synthetic corpus; the
//! merged stream of matching lines arrives at the client.
//!
//! Run with: `cargo run --example mapreduce_grep`

use scsq::prelude::*;

fn main() -> Result<(), ScsqError> {
    let mut scsq = Scsq::lofar();

    // Line 1 holds the reduce step (none here, so merge is outermost);
    // iota(1,64) drives 64 parallel map tasks, each a separate stream
    // process on the front-end cluster (§2.4: "each subquery executes in
    // a separate process").
    let result = scsq.run(
        "merge(spv(
            select grep(\"pulsar\", filename(i))
            from integer i
            where i in iota(1,64)));",
    )?;

    println!("matching lines: {}", result.values().len());
    for line in result.values().iter().take(5) {
        println!("  {line}");
    }
    if result.values().len() > 5 {
        println!("  ... and {} more", result.values().len() - 5);
    }
    println!("query time    : {}", result.total_time());
    println!("processes     : {}", result.stats().rps);

    assert!(
        !result.values().is_empty(),
        "the corpus contains pulsar lines"
    );
    assert!(result
        .values()
        .iter()
        .all(|v| v.as_str().is_some_and(|s| s.contains("pulsar"))));
    assert_eq!(result.stats().rps, 65, "64 grep RPs + the client RP");
    println!("ok: every delivered line matches the pattern");
    Ok(())
}
